// Tests for src/quantum: gate unitarity, circuit accounting, dense
// statevector correctness, MPS-vs-dense equivalence, sampling statistics,
// the noise model, and the EfficientSU2 ansatz.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/error.h"
#include "common/rng.h"
#include "quantum/ansatz.h"
#include "quantum/circuit.h"
#include "quantum/gate.h"
#include "quantum/mps.h"
#include "quantum/noise.h"
#include "quantum/statevector.h"

namespace qdb {
namespace {

constexpr double kPi = 3.14159265358979323846;

bool matrix_is_unitary_1q(GateKind k, double angle) {
  const auto u = gate_matrix_1q(k, angle);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      cplx acc{};
      for (int m = 0; m < 2; ++m) acc += std::conj(u[static_cast<std::size_t>(m)][static_cast<std::size_t>(i)]) * u[static_cast<std::size_t>(m)][static_cast<std::size_t>(j)];
      const double want = i == j ? 1.0 : 0.0;
      if (std::abs(acc - cplx{want, 0.0}) > 1e-12) return false;
    }
  }
  return true;
}

bool matrix_is_unitary_2q(GateKind k) {
  const auto u = gate_matrix_2q(k);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      cplx acc{};
      for (int m = 0; m < 4; ++m) acc += std::conj(u[static_cast<std::size_t>(m)][static_cast<std::size_t>(i)]) * u[static_cast<std::size_t>(m)][static_cast<std::size_t>(j)];
      const double want = i == j ? 1.0 : 0.0;
      if (std::abs(acc - cplx{want, 0.0}) > 1e-12) return false;
    }
  }
  return true;
}

TEST(Gates, AllOneQubitGatesAreUnitary) {
  for (GateKind k : {GateKind::I, GateKind::X, GateKind::Y, GateKind::Z, GateKind::H,
                     GateKind::S, GateKind::Sdg, GateKind::SX, GateKind::SXdg}) {
    EXPECT_TRUE(matrix_is_unitary_1q(k, 0.0)) << gate_name(k);
  }
  for (GateKind k : {GateKind::RX, GateKind::RY, GateKind::RZ}) {
    for (double a : {0.0, 0.3, kPi, -2.1}) EXPECT_TRUE(matrix_is_unitary_1q(k, a)) << gate_name(k);
  }
}

TEST(Gates, AllTwoQubitGatesAreUnitary) {
  for (GateKind k : {GateKind::CX, GateKind::CZ, GateKind::SWAP, GateKind::ECR}) {
    EXPECT_TRUE(matrix_is_unitary_2q(k)) << gate_name(k);
  }
}

TEST(Gates, SxSquaredIsX) {
  const auto sx = gate_matrix_1q(GateKind::SX, 0);
  const auto x = gate_matrix_1q(GateKind::X, 0);
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) {
      cplx acc{};
      for (int m = 0; m < 2; ++m) acc += sx[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)] * sx[static_cast<std::size_t>(m)][static_cast<std::size_t>(j)];
      EXPECT_NEAR(std::abs(acc - x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]), 0.0, 1e-12);
    }
}

TEST(Gates, TwoQubitQueriesOnOneQubitGateThrow) {
  EXPECT_THROW(gate_matrix_2q(GateKind::X), PreconditionError);
  EXPECT_THROW(gate_matrix_1q(GateKind::CX, 0), PreconditionError);
}

TEST(Circuit, DepthCountsLongestChain) {
  Circuit c(3);
  c.h(0).h(1).h(2);      // depth 1: parallel layer
  EXPECT_EQ(c.depth(), 1);
  c.cx(0, 1);            // depth 2
  c.cx(1, 2);            // depth 3
  c.x(0);                // fits in layer 3 (qubit 0 free after layer 2)
  EXPECT_EQ(c.depth(), 3);
}

TEST(Circuit, CountOpsAndTwoQubitCount) {
  Circuit c(2);
  c.ry(0.1, 0).rz(0.2, 1).cx(0, 1).cx(1, 0);
  const auto ops = c.count_ops();
  EXPECT_EQ(ops.at("ry"), 1u);
  EXPECT_EQ(ops.at("rz"), 1u);
  EXPECT_EQ(ops.at("cx"), 2u);
  EXPECT_EQ(c.two_qubit_count(), 2u);
  EXPECT_EQ(c.size(), 4u);
}

TEST(Circuit, RejectsBadQubits) {
  Circuit c(2);
  EXPECT_THROW(c.x(2), PreconditionError);
  EXPECT_THROW(c.cx(0, 0), PreconditionError);
  EXPECT_THROW(c.cx(0, 5), PreconditionError);
  EXPECT_THROW(Circuit(0), PreconditionError);
}

TEST(Statevector, InitialState) {
  Statevector sv(3);
  EXPECT_DOUBLE_EQ(sv.probability(0), 1.0);
  EXPECT_DOUBLE_EQ(sv.probability(5), 0.0);
  EXPECT_NEAR(sv.norm2(), 1.0, 1e-12);
}

TEST(Statevector, BellState) {
  Statevector sv(2);
  Circuit c(2);
  c.h(0).cx(0, 1);
  sv.apply(c);
  EXPECT_NEAR(sv.probability(0b00), 0.5, 1e-12);
  EXPECT_NEAR(sv.probability(0b11), 0.5, 1e-12);
  EXPECT_NEAR(sv.probability(0b01), 0.0, 1e-12);
  EXPECT_NEAR(sv.probability(0b10), 0.0, 1e-12);
}

TEST(Statevector, GhzOnFiveQubits) {
  Statevector sv(5);
  Circuit c(5);
  c.h(0);
  for (int q = 0; q + 1 < 5; ++q) c.cx(q, q + 1);
  sv.apply(c);
  EXPECT_NEAR(sv.probability(0), 0.5, 1e-12);
  EXPECT_NEAR(sv.probability(31), 0.5, 1e-12);
  EXPECT_NEAR(sv.norm2(), 1.0, 1e-12);
}

TEST(Statevector, CxControlTargetOrientation) {
  // CX(control=1, target=0) on |q1=1,q0=0> must give |11>.
  Statevector sv(2);
  Circuit c(2);
  c.x(1).cx(1, 0);
  sv.apply(c);
  EXPECT_NEAR(sv.probability(0b11), 1.0, 1e-12);
}

TEST(Statevector, RotationAngleConvention) {
  // RY(pi) |0> = |1> (up to phase); RY(pi/2) gives equal weights.
  Statevector sv(1);
  sv.apply(Gate::one(GateKind::RY, 0, kPi));
  EXPECT_NEAR(sv.probability(1), 1.0, 1e-12);
  sv.reset();
  sv.apply(Gate::one(GateKind::RY, 0, kPi / 2));
  EXPECT_NEAR(sv.probability(0), 0.5, 1e-12);
}

TEST(Statevector, NormPreservedByRandomCircuit) {
  Rng rng(3);
  Circuit c(6);
  for (int i = 0; i < 120; ++i) {
    const int q = static_cast<int>(rng.below(6));
    switch (rng.below(4)) {
      case 0: c.ry(rng.uniform(-kPi, kPi), q); break;
      case 1: c.rz(rng.uniform(-kPi, kPi), q); break;
      case 2: c.h(q); break;
      default: {
        int q2 = static_cast<int>(rng.below(6));
        if (q2 == q) q2 = (q + 1) % 6;
        c.cx(q, q2);
      }
    }
  }
  Statevector sv(6);
  sv.apply(c);
  EXPECT_NEAR(sv.norm2(), 1.0, 1e-10);
}

TEST(Statevector, ExpectationDiagonalMatchesManualSum) {
  Statevector sv(2);
  Circuit c(2);
  c.h(0);
  sv.apply(c);
  // f(x) = x as a number: <f> = 0.5*0 + 0.5*1 = 0.5
  const double e = sv.expectation_diagonal([](std::uint64_t x) { return static_cast<double>(x); });
  EXPECT_NEAR(e, 0.5, 1e-12);
}

TEST(Statevector, SamplingMatchesProbabilities) {
  Statevector sv(3);
  Circuit c(3);
  c.h(0).h(1).h(2);
  sv.apply(c);
  Rng rng(77);
  const auto shots = sv.sample(16000, rng);
  std::map<std::uint64_t, int> counts;
  for (auto s : shots) ++counts[s];
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [k, v] : counts) {
    (void)k;
    EXPECT_NEAR(static_cast<double>(v) / 16000.0, 0.125, 0.02);
  }
}

TEST(Statevector, SamplingIsDeterministicPerSeed) {
  Statevector sv(2);
  Circuit c(2);
  c.h(0).cx(0, 1);
  sv.apply(c);
  Rng r1(5), r2(5);
  EXPECT_EQ(sv.sample(100, r1), sv.sample(100, r2));
}

TEST(Statevector, FidelityOfIdenticalStatesIsOne) {
  Statevector a(3), b(3);
  Circuit c(3);
  c.h(0).cx(0, 1).ry(0.7, 2);
  a.apply(c);
  b.apply(c);
  EXPECT_NEAR(Statevector::fidelity(a, b), 1.0, 1e-12);
}

Circuit random_linear_circuit(int nq, int gates, std::uint64_t seed) {
  Rng rng(seed);
  Circuit c(nq);
  for (int i = 0; i < gates; ++i) {
    const int q = static_cast<int>(rng.below(static_cast<std::uint64_t>(nq)));
    switch (rng.below(5)) {
      case 0: c.ry(rng.uniform(-kPi, kPi), q); break;
      case 1: c.rz(rng.uniform(-kPi, kPi), q); break;
      case 2: c.h(q); break;
      case 3: c.sx(q); break;
      default:
        if (q + 1 < nq) c.cx(q, q + 1);
        else c.cx(q - 1, q);
    }
  }
  return c;
}

TEST(Mps, MatchesDenseOnRandomCircuits) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const int nq = 6;
    const Circuit c = random_linear_circuit(nq, 80, seed);
    Statevector sv(nq);
    sv.apply(c);
    MpsSimulator mps(nq, /*max_bond=*/64);
    mps.apply(c);
    for (std::uint64_t x = 0; x < (1u << nq); ++x) {
      EXPECT_NEAR(std::abs(mps.amplitude(x) - sv.amplitudes()[x]), 0.0, 1e-8)
          << "seed " << seed << " x " << x;
    }
    EXPECT_NEAR(mps.norm2(), 1.0, 1e-8);
    EXPECT_LT(mps.truncation_weight(), 1e-12);
  }
}

TEST(Mps, HandlesNonAdjacentGates) {
  const int nq = 5;
  Circuit c(nq);
  c.h(0).cx(0, 4).cx(4, 1).ry(0.3, 2).cx(3, 0);
  Statevector sv(nq);
  sv.apply(c);
  MpsSimulator mps(nq);
  mps.apply(c);
  for (std::uint64_t x = 0; x < (1u << nq); ++x) {
    EXPECT_NEAR(std::abs(mps.amplitude(x) - sv.amplitudes()[x]), 0.0, 1e-8);
  }
}

TEST(Mps, GhzStateAmplitudesAndSampling) {
  const int nq = 10;
  Circuit c(nq);
  c.h(0);
  for (int q = 0; q + 1 < nq; ++q) c.cx(q, q + 1);
  MpsSimulator mps(nq);
  mps.apply(c);
  const std::uint64_t all_ones = (std::uint64_t{1} << nq) - 1;
  EXPECT_NEAR(std::abs(mps.amplitude(0)), std::sqrt(0.5), 1e-10);
  EXPECT_NEAR(std::abs(mps.amplitude(all_ones)), std::sqrt(0.5), 1e-10);
  EXPECT_NEAR(std::abs(mps.amplitude(1)), 0.0, 1e-10);
  EXPECT_EQ(mps.max_bond_reached(), 2);

  Rng rng(123);
  const auto shots = mps.sample(4000, rng);
  int zeros = 0, ones = 0, other = 0;
  for (auto s : shots) {
    if (s == 0) ++zeros;
    else if (s == all_ones) ++ones;
    else ++other;
  }
  EXPECT_EQ(other, 0);
  EXPECT_NEAR(static_cast<double>(zeros) / 4000.0, 0.5, 0.04);
  EXPECT_NEAR(static_cast<double>(ones) / 4000.0, 0.5, 0.04);
}

TEST(Mps, SamplingDistributionMatchesDense) {
  const int nq = 4;
  const Circuit c = random_linear_circuit(nq, 40, 9);
  Statevector sv(nq);
  sv.apply(c);
  MpsSimulator mps(nq);
  mps.apply(c);
  Rng rng(55);
  const auto shots = mps.sample(30000, rng);
  std::vector<int> counts(1 << nq, 0);
  for (auto s : shots) ++counts[s];
  for (std::uint64_t x = 0; x < (1u << nq); ++x) {
    EXPECT_NEAR(static_cast<double>(counts[x]) / 30000.0, sv.probability(x), 0.02);
  }
}

TEST(Mps, TruncationIsTrackedUnderTightBond) {
  // A deep entangling circuit with max_bond=2 must truncate and renormalise.
  const int nq = 8;
  Circuit c(nq);
  Rng rng(21);
  for (int layer = 0; layer < 6; ++layer) {
    for (int q = 0; q < nq; ++q) c.ry(rng.uniform(-kPi, kPi), q);
    for (int q = 0; q + 1 < nq; ++q) c.cx(q, q + 1);
  }
  MpsSimulator mps(nq, /*max_bond=*/2);
  mps.apply(c);
  EXPECT_GT(mps.truncation_weight(), 0.0);
  // Local renormalisation keeps the norm close to 1 but (without canonical
  // form) not exact; normalize() makes it exact.
  EXPECT_NEAR(mps.norm2(), 1.0, 0.1);
  mps.normalize();
  EXPECT_NEAR(mps.norm2(), 1.0, 1e-10);
}

TEST(Mps, ExpectationSampledConvergesToDense) {
  const int nq = 5;
  const Circuit c = random_linear_circuit(nq, 60, 17);
  Statevector sv(nq);
  sv.apply(c);
  auto f = [](std::uint64_t x) { return static_cast<double>(__builtin_popcountll(x)); };
  const double exact = sv.expectation_diagonal(f);
  MpsSimulator mps(nq);
  mps.apply(c);
  Rng rng(31);
  const double est = mps.expectation_diagonal_sampled(f, 20000, rng);
  EXPECT_NEAR(est, exact, 0.06);
}

TEST(Noise, IdealModelIsIdentity) {
  const NoiseModel m = NoiseModel::ideal();
  EXPECT_TRUE(m.is_ideal());
  Circuit c(2);
  c.h(0).cx(0, 1);
  Rng rng(1);
  const Circuit noisy = noise_trajectory(c, m, rng);
  EXPECT_EQ(noisy.size(), c.size());
}

TEST(Noise, TrajectoriesInsertErrorsAtExpectedRate) {
  NoiseModel m;
  m.p_depol_1q = 0.5;
  Circuit c(1);
  for (int i = 0; i < 200; ++i) c.ry(0.1, 0);
  Rng rng(2);
  const Circuit noisy = noise_trajectory(c, m, rng);
  const std::size_t inserted = noisy.size() - c.size();
  EXPECT_NEAR(static_cast<double>(inserted), 100.0, 25.0);
}

TEST(Noise, ReadoutErrorFlipsBitsAtConfiguredRate) {
  NoiseModel m;
  m.p_readout_01 = 0.25;
  std::vector<std::uint64_t> shots(20000, 0);  // all zeros, 1 qubit
  Rng rng(3);
  apply_readout_error(shots, 1, m, rng);
  int flipped = 0;
  for (auto s : shots) flipped += (s == 1);
  EXPECT_NEAR(static_cast<double>(flipped) / 20000.0, 0.25, 0.02);
}

TEST(Noise, EagleModelIsCalibratedAndScalable) {
  const NoiseModel m = NoiseModel::eagle_r3();
  EXPECT_GT(m.p_depol_2q, m.p_depol_1q);
  EXPECT_FALSE(m.is_ideal());
  const NoiseModel doubled = m.scaled(2.0);
  EXPECT_NEAR(doubled.p_depol_2q, 2 * m.p_depol_2q, 1e-12);
  const NoiseModel off = m.scaled(0.0);
  EXPECT_TRUE(off.is_ideal());
  // Scaling clamps at probability 1.
  EXPECT_LE(m.scaled(1e6).p_readout_01, 1.0);
}

TEST(Noise, CircuitDurationGrowsWithDepth) {
  const NoiseModel m = NoiseModel::eagle_r3();
  Circuit shallow(2);
  shallow.h(0);
  Circuit deep(2);
  for (int i = 0; i < 100; ++i) deep.cx(0, 1);
  EXPECT_GT(circuit_duration_s(deep, m), circuit_duration_s(shallow, m));
  EXPECT_GT(circuit_duration_s(shallow, m), 0.0);
}

TEST(Ansatz, ParameterCountMatchesQiskit) {
  // Qiskit EfficientSU2(n, reps=r, ['ry','rz']): 2*n*(r+1) parameters.
  EXPECT_EQ(EfficientSU2(4, 1).num_parameters(), 16);
  EXPECT_EQ(EfficientSU2(22, 3).num_parameters(), 176);
}

TEST(Ansatz, BuildStructure) {
  const EfficientSU2 ansatz(4, 2);
  std::vector<double> params(static_cast<std::size_t>(ansatz.num_parameters()), 0.1);
  const Circuit c = ansatz.build(params);
  const auto ops = c.count_ops();
  EXPECT_EQ(ops.at("ry"), 12u);  // 3 rotation blocks x 4 qubits
  EXPECT_EQ(ops.at("rz"), 12u);
  EXPECT_EQ(ops.at("cx"), 6u);  // 2 reps x 3 adjacent pairs
  EXPECT_THROW(ansatz.build({0.0}), PreconditionError);
}

TEST(Ansatz, ZeroParametersGiveZeroState) {
  const EfficientSU2 ansatz(5, 1);
  std::vector<double> zeros(static_cast<std::size_t>(ansatz.num_parameters()), 0.0);
  Statevector sv(5);
  sv.apply(ansatz.build(zeros));
  EXPECT_NEAR(sv.probability(0), 1.0, 1e-12);
}

TEST(Ansatz, LowEntanglementUnderMps) {
  // reps=2 linear entanglement stays at tiny bond dimension: that is why the
  // MPS simulator handles the 22-qubit L-group circuits instantly.
  const EfficientSU2 ansatz(22, 2);
  Rng rng(5);
  const auto p = ansatz.initial_point(rng, 0.8);
  MpsSimulator mps(22);
  mps.apply(ansatz.build(p));
  EXPECT_LE(mps.max_bond_reached(), 4);
  EXPECT_NEAR(mps.norm2(), 1.0, 1e-9);
}

TEST(Ansatz, InitialPointIsDeterministicPerSeed) {
  const EfficientSU2 ansatz(3, 1);
  Rng r1(9), r2(9);
  EXPECT_EQ(ansatz.initial_point(r1), ansatz.initial_point(r2));
}

}  // namespace
}  // namespace qdb
