// Failure-injection and robustness tests: malformed inputs, boundary sizes,
// and degenerate geometry must fail loudly (typed exceptions) or degrade
// gracefully — never crash or return garbage silently.
//
// The second half of this file exercises the ISSUE 2 resilience layer:
// the deterministic fault injector, the retry/backoff/degradation ladder in
// run_batch, and the crash-consistent checkpoint/resume path.  Those tests
// honour QDB_FAULT_SEED (the CI fault sweep) wherever the assertions are
// seed-independent.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>  // getpid for per-process scratch directories
#endif

#include "common/error.h"
#include "common/fault.h"
#include "common/json.h"
#include "common/rng.h"
#include "data/batch.h"
#include "data/checkpoint.h"
#include "dock/dock.h"
#include "dock/ligand_gen.h"
#include "lattice/hamiltonian.h"
#include "lattice/solver.h"
#include "quantum/mps.h"
#include "quantum/statevector.h"
#include "structure/pdb.h"
#include "structure/reconstruct.h"

namespace qdb {
namespace {

TEST(Robustness, TruncatedPdbRecordsThrowParseError) {
  // Truncated coordinate field.
  EXPECT_THROW(parse_pdb("ATOM      1  CA  ALA A   1      0.000   0.0"), ParseError);
  // Garbage in a numeric column.
  EXPECT_THROW(
      parse_pdb("ATOM      1  CA  ALA A   1      xx.xxx   0.000   0.000  1.00  0.00"),
      ParseError);
  // Unknown residue type.
  EXPECT_THROW(
      parse_pdb("ATOM      1  CA  QQQ A   1      0.000   0.000   0.000  1.00  0.00"),
      ParseError);
}

TEST(Robustness, PdbIgnoresNonAtomRecords) {
  const std::string text =
      "HEADER    test\n"
      "REMARK    anything at all\n"
      "ATOM      1  CA  ALA A   1      1.000   2.000   3.000  1.00  0.00           C\n"
      "TER\nEND\n";
  const Structure s = parse_pdb(text);
  EXPECT_EQ(s.num_residues(), 1);
  EXPECT_NEAR(s.residues[0].atoms[0].pos.y, 2.0, 1e-9);
}

TEST(Robustness, MissingBackboneAtomsThrow) {
  Structure s;
  Residue r;
  r.type = AminoAcid::Ala;
  r.atoms.push_back(Atom{"CB", 'C', {0, 0, 0}, 0.0});
  s.residues.push_back(r);
  EXPECT_THROW(s.ca_positions(), PreconditionError);
  EXPECT_THROW(s.backbone_positions(), PreconditionError);
}

TEST(Robustness, JsonDeepNestingParses) {
  std::string doc;
  for (int i = 0; i < 60; ++i) doc += "[";
  doc += "1";
  for (int i = 0; i < 60; ++i) doc += "]";
  EXPECT_NO_THROW(Json::parse(doc));
}

TEST(Robustness, JsonNanDumpsAsNull) {
  Json j = Json::object();
  j.set("v", std::nan(""));
  EXPECT_NE(j.dump().find("null"), std::string::npos);
}

TEST(Robustness, EncodeTurnsRejectsBrokenGauge) {
  EXPECT_THROW(encode_turns({1, 1, 2, 3}), PreconditionError);   // t0 != 0
  EXPECT_THROW(encode_turns({0, 0, 2, 3}), PreconditionError);   // t1 != 1
  EXPECT_THROW(encode_turns({0, 1, 7, 3}), PreconditionError);   // bad index
  EXPECT_THROW(encode_turns({0, 1}), PreconditionError);         // too short
}

TEST(Robustness, HamiltonianBoundarySizes) {
  // Smallest legal fragment: 4 residues, one free turn.
  const FoldingHamiltonian tiny(parse_sequence("AAAA"), HamiltonianWeights::standard(4));
  EXPECT_EQ(tiny.num_qubits(), 2);
  for (std::uint64_t x = 0; x < 4; ++x) EXPECT_TRUE(std::isfinite(tiny.energy(x)));
  // Over the 64-bit encoding limit.
  const std::vector<AminoAcid> too_long(40, AminoAcid::Ala);
  EXPECT_THROW(FoldingHamiltonian(too_long, HamiltonianWeights::standard(14)),
               PreconditionError);
}

TEST(Robustness, ExactSolverOnHomopolymerTies) {
  // Fully degenerate sequence: many ties; the solver must stay deterministic.
  const FoldingHamiltonian h(parse_sequence("GGGGGGG"), HamiltonianWeights::standard(7));
  const SolveResult a = ExactSolver().solve(h);
  const SolveResult b = ExactSolver().solve(h);
  EXPECT_EQ(a.bitstring, b.bitstring);
  EXPECT_TRUE(is_self_avoiding(walk_positions(a.turns)));
}

TEST(Robustness, ReconstructCollinearTrace) {
  // A perfectly straight Calpha trace exercises the degenerate-frame path.
  std::vector<Vec3> line;
  for (int i = 0; i < 6; ++i) line.push_back(Vec3{3.8 * i, 0, 0});
  const Structure s = reconstruct_backbone(line, parse_sequence("AAAAAA"), "line");
  ASSERT_EQ(s.num_residues(), 6);
  for (const Residue& r : s.residues) {
    for (const Atom& a : r.atoms) {
      EXPECT_TRUE(std::isfinite(a.pos.x) && std::isfinite(a.pos.y) && std::isfinite(a.pos.z));
    }
  }
}

TEST(Robustness, MpsLongRangeGateViaSwapChain) {
  // A CX spanning the whole register routes through adjacent swaps.
  const int nq = 8;
  Circuit c(nq);
  c.h(0).cx(0, 7);
  Statevector sv(nq);
  sv.apply(c);
  MpsSimulator mps(nq);
  mps.apply(c);
  for (std::uint64_t x : {0ull, 129ull, 1ull, 128ull}) {
    EXPECT_NEAR(std::abs(mps.amplitude(x) - sv.amplitudes()[x]), 0.0, 1e-9) << x;
  }
}

TEST(Robustness, MpsWideRegister) {
  // 40 qubits: far beyond dense reach; product + neighbour entanglement.
  MpsSimulator mps(40);
  Circuit c(40);
  for (int q = 0; q < 40; ++q) c.ry(0.1 * q, q);
  for (int q = 0; q + 1 < 40; ++q) c.cx(q, q + 1);
  mps.apply(c);
  EXPECT_NEAR(mps.norm2(), 1.0, 1e-8);
  Rng rng(5);
  EXPECT_EQ(mps.sample(32, rng).size(), 32u);
}

TEST(Robustness, DockingDegenerateLigandAndTinyBox) {
  // Single-atom rigid ligand in a minimal box still produces a pose.
  std::vector<LigandAtom> one(1);
  one[0].name = "C1";
  one[0].element = 'C';
  one[0].hydrophobic = true;
  const Ligand lig({one.begin(), one.end()}, {}, "atom");

  const auto seq = parse_sequence("VKDRS");
  const FoldingHamiltonian h(seq, HamiltonianWeights::standard(5));
  const SolveResult g = ExactSolver().solve(h);
  std::vector<Vec3> trace;
  for (const IVec3& p : walk_positions(g.turns)) trace.push_back(lattice_to_cartesian(p));
  Structure rec = reconstruct_backbone(trace, seq, "tiny");
  rec.center_on_origin();

  DockingParams params;
  params.num_runs = 2;
  params.mc_steps = 50;
  params.box_center = Vec3{0, 0, 0};
  params.box_size = 2.0;
  const DockingResult r = dock(rec, lig, params);
  EXPECT_FALSE(r.poses.empty());
  EXPECT_TRUE(std::isfinite(r.best_affinity));
}

TEST(Robustness, LigandGeneratorExtremeOptions) {
  LigandGenOptions opt;
  opt.min_chains = opt.max_chains = 1;
  opt.min_chain_length = opt.max_chain_length = 1;
  const Ligand minimal = generate_ligand("xxxx", opt);
  EXPECT_GE(minimal.num_atoms(), 7);  // ring + 1
  // A 1-atom chain has no rotatable bond.
  EXPECT_EQ(minimal.num_torsions(), 0);

  opt.min_chains = opt.max_chains = 6;
  opt.min_chain_length = opt.max_chain_length = 6;
  const Ligand big = generate_ligand("yyyy", opt);
  EXPECT_GE(big.num_atoms(), 30);
  EXPECT_GE(big.num_torsions(), 10);
}

TEST(Robustness, StatevectorQubitLimitEnforced) {
  EXPECT_THROW(Statevector(0), PreconditionError);
  EXPECT_THROW(Statevector(31), PreconditionError);
}

// ===========================================================================
// ISSUE 2: deterministic fault injection, resilient batch execution,
// checkpoint/resume.
// ===========================================================================

/// RAII guard: every resilience test starts and ends with a clean injector.
struct InjectorGuard {
  InjectorGuard() { reset(); }
  ~InjectorGuard() { reset(); }
  static void reset() {
    FaultInjector::instance().clear();
    FaultInjector::instance().set_seed(0);
  }
};

/// Unique scratch directory for checkpoint files (tests run in parallel).
std::string scratch_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("qdb_robustness_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::vector<const DatasetEntry*> first_s_entries(std::size_t count) {
  std::vector<const DatasetEntry*> subset;
  for (const DatasetEntry* e : entries_in_group(Group::S)) {
    subset.push_back(e);
    if (subset.size() == count) break;
  }
  return subset;
}

BatchOptions tiny_vqe_options() {
  BatchOptions opt;
  opt.run_vqe = true;
  opt.vqe.max_evaluations = 6;
  opt.vqe.shots_per_eval = 48;
  opt.vqe.final_shots = 256;
  opt.threads = 1;
  return opt;
}

/// Field-by-field byte identity (EXPECT_EQ on doubles is deliberate).
void expect_reports_bitwise_equal(const BatchReport& a, const BatchReport& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    SCOPED_TRACE(a.jobs[i].pdb_id);
    EXPECT_EQ(a.jobs[i].pdb_id, b.jobs[i].pdb_id);
    EXPECT_EQ(a.jobs[i].group, b.jobs[i].group);
    EXPECT_EQ(a.jobs[i].qubits, b.jobs[i].qubits);
    EXPECT_EQ(a.jobs[i].evaluations, b.jobs[i].evaluations);
    EXPECT_EQ(a.jobs[i].shots, b.jobs[i].shots);
    EXPECT_EQ(a.jobs[i].device_time_s, b.jobs[i].device_time_s);
    EXPECT_EQ(a.jobs[i].queue_start_s, b.jobs[i].queue_start_s);
    EXPECT_EQ(a.jobs[i].lowest_energy, b.jobs[i].lowest_energy);
    EXPECT_EQ(a.jobs[i].status, b.jobs[i].status);
    EXPECT_EQ(a.jobs[i].attempts, b.jobs[i].attempts);
    EXPECT_EQ(a.jobs[i].retry_wait_s, b.jobs[i].retry_wait_s);
    EXPECT_EQ(a.jobs[i].engine_used, b.jobs[i].engine_used);
    EXPECT_EQ(a.jobs[i].degradation, b.jobs[i].degradation);
    EXPECT_EQ(a.jobs[i].failure_log, b.jobs[i].failure_log);
  }
  EXPECT_EQ(a.total_device_time_s, b.total_device_time_s);
  EXPECT_EQ(a.total_retry_wait_s, b.total_retry_wait_s);
  EXPECT_EQ(a.total_cost_usd, b.total_cost_usd);
}

std::vector<int> fire_pattern(const char* site, const char* job, int attempt, int calls) {
  FaultScope scope(job, attempt);
  std::vector<int> fired;
  for (int i = 0; i < calls; ++i) {
    try {
      fault_site(site);
      fired.push_back(0);
    } catch (const Error&) {
      fired.push_back(1);
    }
  }
  return fired;
}

TEST(FaultInjection, DeterministicPerScopeStream) {
  InjectorGuard guard;
  FaultInjector::instance().set_seed(fault_seed_from_env(99));
  FaultSiteConfig cfg;
  cfg.probability = 0.5;
  FaultInjector::instance().configure("test.site", cfg);

  const auto a1 = fire_pattern("test.site", "4jpy", 1, 64);
  const auto a2 = fire_pattern("test.site", "4jpy", 1, 64);
  EXPECT_EQ(a1, a2);  // same (seed, job, attempt) -> same decision stream
  EXPECT_GT(FaultInjector::instance().fire_count("test.site"), 0u);

  // Different attempts and different jobs draw independent streams (equal
  // 64-bit patterns would be a 2^-64 coincidence).
  EXPECT_NE(a1, fire_pattern("test.site", "4jpy", 2, 64));
  EXPECT_NE(a1, fire_pattern("test.site", "2q3i", 1, 64));
}

TEST(FaultInjection, TriggerOnNthAndMaxAttempt) {
  InjectorGuard guard;
  FaultSiteConfig cfg;
  cfg.trigger_on_nth = 3;
  cfg.max_attempt = 2;
  cfg.kind = FaultKind::QueuePreempted;
  FaultInjector::instance().configure("test.nth", cfg);

  {
    FaultScope scope("job", 1);
    EXPECT_NO_THROW(fault_site("test.nth"));  // call 1
    EXPECT_NO_THROW(fault_site("test.nth"));  // call 2
    EXPECT_THROW(fault_site("test.nth"), QueuePreemptedError);  // call 3
    EXPECT_NO_THROW(fault_site("test.nth"));  // call 4
  }
  {
    // Attempt 3 exceeds max_attempt: the outage has "cleared".
    FaultScope scope("job", 3);
    for (int i = 0; i < 5; ++i) EXPECT_NO_THROW(fault_site("test.nth"));
  }
  EXPECT_EQ(FaultInjector::instance().fire_count("test.nth"), 1u);
}

TEST(FaultInjection, KindsMapToTypedRetryableErrors) {
  InjectorGuard guard;
  const std::pair<FaultKind, bool> kinds[] = {
      {FaultKind::Transient, true},
      {FaultKind::QueuePreempted, true},
      {FaultKind::CalibrationDrift, true},
      {FaultKind::Io, false},
  };
  for (const auto& [kind, retryable] : kinds) {
    FaultSiteConfig cfg;
    cfg.trigger_on_nth = 1;
    cfg.kind = kind;
    FaultInjector::instance().configure("test.kind", cfg);
    FaultScope scope("job", 1);
    try {
      fault_site("test.kind");
      FAIL() << "site did not fire for kind " << fault_kind_name(kind);
    } catch (const Error& ex) {
      EXPECT_EQ(is_retryable_fault(ex), retryable) << fault_kind_name(kind);
    }
  }
  EXPECT_FALSE(is_retryable_fault(ParseError("x")));
  EXPECT_FALSE(is_retryable_fault(PreconditionError("x")));
}

TEST(FaultInjection, UnscopedOrUnconfiguredSitesNeverFire) {
  InjectorGuard guard;
  FaultSiteConfig cfg;
  cfg.probability = 1.0;
  FaultInjector::instance().configure("test.always", cfg);
  // No armed scope: the site must not fire even at probability 1.
  EXPECT_FALSE(FaultScope::active());
  EXPECT_NO_THROW(fault_site("test.always"));
  // Unconfigured site inside a scope: no fire.
  FaultScope scope("job", 1);
  EXPECT_TRUE(FaultScope::active());
  EXPECT_NO_THROW(fault_site("test.other"));
}

TEST(BatchResilience, RetryBackoffAccountingIsExact) {
  InjectorGuard guard;
  // First stage-1 evaluation fails on attempts 1 and 2, then the outage
  // clears (max_attempt=2): deterministic two-retry schedule.
  FaultSiteConfig cfg;
  cfg.trigger_on_nth = 1;
  cfg.max_attempt = 2;
  FaultInjector::instance().configure("vqe.stage1.evaluate", cfg);

  BatchOptions opt = tiny_vqe_options();
  const auto subset = first_s_entries(1);
  const BatchReport r = run_batch(subset, opt);

  ASSERT_EQ(r.jobs.size(), 1u);
  const BatchJobRecord& job = r.jobs[0];
  EXPECT_EQ(job.status, JobStatus::Retried);
  EXPECT_EQ(job.attempts, 3);
  ASSERT_EQ(job.failure_log.size(), 2u);
  EXPECT_NE(job.failure_log[0].find("vqe.stage1.evaluate"), std::string::npos);
  // Exponential backoff: 60 s before retry 1, 120 s before retry 2.
  EXPECT_EQ(job.retry_wait_s, 60.0 + 120.0);
  EXPECT_EQ(r.total_retry_wait_s, 180.0);
  EXPECT_EQ(job.degradation, "");
  EXPECT_EQ(job.engine_used, "dense");
  // The successful attempt is bit-identical to an undisturbed run.
  InjectorGuard::reset();
  const BatchReport clean = run_batch(subset, opt);
  EXPECT_EQ(job.device_time_s, clean.jobs[0].device_time_s);
  EXPECT_EQ(job.lowest_energy, clean.jobs[0].lowest_energy);
  // Backoff waits are modelled into the queue clock but are not billed.
  EXPECT_EQ(r.total_cost_usd, clean.total_cost_usd);
}

TEST(BatchResilience, BackoffPolicyCurve) {
  RetryPolicy p;
  EXPECT_EQ(p.backoff_s(0), 60.0);
  EXPECT_EQ(p.backoff_s(1), 120.0);
  EXPECT_EQ(p.backoff_s(2), 240.0);
  EXPECT_EQ(p.backoff_s(10), 3600.0);  // capped
}

TEST(BatchResilience, MpsBondOverflowDegradesToDenseEngine) {
  InjectorGuard guard;  // no injected faults: this is a *real* overload path
  BatchOptions opt = tiny_vqe_options();
  opt.vqe.engine = VqeOptions::Engine::Mps;
  opt.vqe.max_bond = 1;                  // guarantees truncation
  opt.vqe.max_truncation_weight = 0.0;   // any truncation = overflow
  opt.retry.max_attempts = 1;

  const auto subset = first_s_entries(1);
  const BatchReport r = run_batch(subset, opt);
  ASSERT_EQ(r.jobs.size(), 1u);
  const BatchJobRecord& job = r.jobs[0];
  EXPECT_EQ(job.status, JobStatus::Degraded);
  EXPECT_EQ(job.degradation, "dense-engine");
  EXPECT_EQ(job.engine_used, "dense");
  ASSERT_FALSE(job.failure_log.empty());
  EXPECT_NE(job.failure_log[0].find("bond-cap overflow"), std::string::npos);
}

TEST(BatchResilience, VqeDriverThrowsTypedOverflowError) {
  const FoldingHamiltonian h(parse_sequence("VKDRS"), HamiltonianWeights::standard(5));
  VqeOptions opt;
  opt.max_evaluations = 4;
  opt.shots_per_eval = 32;
  opt.final_shots = 128;
  opt.engine = VqeOptions::Engine::Mps;
  opt.max_bond = 1;
  opt.max_truncation_weight = 0.0;
  EXPECT_THROW(VqeDriver(h, opt).run(), TransientDeviceError);
}

TEST(BatchResilience, FaultMatrixEverySiteFiresAndNeverCrashes) {
  // Sweep every registered fault site one at a time with a deterministic
  // first-call trigger; run_batch must return a report (never crash) and
  // every non-Ok job must carry a populated failure_log.
  struct Case {
    const char* site;
    bool account_mode;      // exercise via the published-accounting path
    bool force_mps;         // site only reachable on the MPS engine
    bool needs_checkpoint;  // site only reachable while checkpointing
    int max_attempt;        // 0 = fault never clears
  };
  const Case cases[] = {
      {"vqe.stage1.evaluate", false, false, false, 1},
      {"vqe.stage2.sample", false, false, false, 1},
      {"engine.dense.apply", false, false, false, 1},
      {"engine.mps.apply", false, true, false, 0},
      {"io.write", false, false, true, 0},
      {"batch.checkpoint", false, false, true, 0},
      {"batch.account", true, false, false, 1},
  };
  const std::string dir = scratch_dir("matrix");
  for (const Case& c : cases) {
    SCOPED_TRACE(c.site);
    InjectorGuard::reset();
    FaultSiteConfig cfg;
    cfg.trigger_on_nth = 1;
    cfg.max_attempt = c.max_attempt;
    cfg.kind = std::string_view(c.site) == "io.write" ? FaultKind::Io
                                                      : FaultKind::Transient;
    FaultInjector::instance().configure(c.site, cfg);

    BatchOptions opt = tiny_vqe_options();
    opt.run_vqe = !c.account_mode;
    if (c.force_mps) opt.vqe.engine = VqeOptions::Engine::Mps;
    if (c.needs_checkpoint) {
      opt.checkpoint_path = dir + "/" + std::string(c.site) + ".ckpt.json";
    }
    opt.retry.max_attempts = 2;

    const auto subset = first_s_entries(2);
    BatchReport r;
    ASSERT_NO_THROW(r = run_batch(subset, opt));
    ASSERT_EQ(r.jobs.size(), 2u);
    EXPECT_GE(FaultInjector::instance().fire_count(c.site), 1u);
    for (const BatchJobRecord& job : r.jobs) {
      if (job.status != JobStatus::Ok) {
        EXPECT_FALSE(job.failure_log.empty());
      }
      if (job.status == JobStatus::Failed) {
        EXPECT_EQ(job.device_time_s, 0.0);
      }
    }
    if (c.needs_checkpoint) {
      // Checkpoint writes failed (deterministically) but were downgraded to
      // warnings; the batch itself still completed.
      EXPECT_FALSE(r.checkpoint_warnings.empty());
      EXPECT_EQ(r.count(JobStatus::Failed), 0);
    }
  }
  std::filesystem::remove_all(dir);
  InjectorGuard::reset();
}

TEST(BatchResilience, TenPercentFaultRateFullBatchCompletes) {
  // Acceptance criterion: a 10% per-job transient-fault rate over the full
  // 55-entry batch finishes with zero process aborts and populated failure
  // logs.  The accounting path keeps this fast; the retry ladder drives the
  // expected per-job failure probability down to ~0.1%.
  InjectorGuard guard;
  FaultInjector::instance().set_seed(fault_seed_from_env(2026));
  FaultSiteConfig cfg;
  cfg.probability = 0.10;
  cfg.kind = FaultKind::Transient;
  FaultInjector::instance().configure("batch.account", cfg);

  BatchOptions opt;
  opt.run_vqe = false;
  BatchReport r;
  ASSERT_NO_THROW(r = run_batch_all(opt));
  ASSERT_EQ(r.jobs.size(), 55u);
  int non_ok = 0;
  for (const BatchJobRecord& job : r.jobs) {
    if (job.status != JobStatus::Ok) {
      ++non_ok;
      EXPECT_FALSE(job.failure_log.empty()) << job.pdb_id;
      EXPECT_GT(job.attempts, 1) << job.pdb_id;
    }
  }
  // With p=0.1 and 3 attempts/job: P(>=1 retry) ~ 10%, P(job fails) ~ 0.1%.
  EXPECT_GT(non_ok, 0);  // 55 jobs at 10%: P(no faults at all) ~ 0.3%
  EXPECT_GE(r.completion_rate(), 0.9);
  // Deterministic under a fixed seed: an identical rerun is bit-identical.
  const BatchReport again = run_batch_all(opt);
  expect_reports_bitwise_equal(r, again);
}

TEST(BatchResilience, FailFastRestoresLegacyAbort) {
  InjectorGuard guard;
  FaultSiteConfig cfg;
  cfg.trigger_on_nth = 1;  // never clears: the job is doomed
  FaultInjector::instance().configure("batch.account", cfg);

  BatchOptions opt;
  opt.run_vqe = false;
  opt.retry.max_attempts = 2;
  const auto subset = first_s_entries(2);

  opt.fail_fast = true;
  EXPECT_THROW(run_batch(subset, opt), TransientDeviceError);

  opt.fail_fast = false;
  const BatchReport r = run_batch(subset, opt);
  EXPECT_EQ(r.count(JobStatus::Failed), 2);
  for (const BatchJobRecord& job : r.jobs) {
    EXPECT_EQ(job.failure_log.size(), 2u);  // one line per failed attempt
  }
}

TEST(BatchResilience, CheckpointResumeIsByteIdentical) {
  // The golden kill-and-resume test: a run interrupted after two jobs and
  // resumed must produce a report byte-identical to an uninterrupted run —
  // including under injected faults and across thread counts.
  InjectorGuard guard;
  FaultInjector::instance().set_seed(fault_seed_from_env(7));
  FaultSiteConfig cfg;
  // Per-evaluation probability; with ~44 evaluations/attempt this retries a
  // fair share of attempts without dooming whole jobs.
  cfg.probability = 0.005;
  FaultInjector::instance().configure("vqe.stage1.evaluate", cfg);

  const std::string dir = scratch_dir("resume");
  BatchOptions opt = tiny_vqe_options();
  opt.threads = 2;
  const auto all4 = first_s_entries(4);
  const std::vector<const DatasetEntry*> first2(all4.begin(), all4.begin() + 2);

  // Uninterrupted reference run.
  opt.checkpoint_path = dir + "/uninterrupted.json";
  const BatchReport reference = run_batch(all4, opt);

  // "Killed after two jobs": a run over the prefix leaves a checkpoint...
  opt.checkpoint_path = dir + "/interrupted.json";
  (void)run_batch(first2, opt);
  ASSERT_TRUE(std::filesystem::exists(opt.checkpoint_path));
  // ...and the resumed full run skips them, completing the rest.
  const BatchReport resumed = run_batch(all4, opt);
  expect_reports_bitwise_equal(reference, resumed);

  // Resuming a *finished* checkpoint re-executes nothing and still yields
  // the identical report.
  const BatchReport resumed_again = run_batch(all4, opt);
  expect_reports_bitwise_equal(reference, resumed_again);

  // Thread counts do not change the failure path either.
  BatchOptions serial = opt;
  serial.threads = 1;
  serial.checkpoint_path.clear();
  const BatchReport serial_run = run_batch(all4, serial);
  expect_reports_bitwise_equal(reference, serial_run);

  std::filesystem::remove_all(dir);
}

TEST(BatchResilience, CheckpointRoundTripsExactDoubles) {
  BatchReport r;
  BatchJobRecord j;
  j.pdb_id = "4jpy";
  j.group = Group::L;
  j.qubits = 27;
  j.evaluations = 123;
  j.shots = 456789;
  j.device_time_s = 0.1 + 0.2;            // 0.30000000000000004: not %.10g-safe
  j.lowest_energy = -3.141592653589793;
  j.status = JobStatus::Retried;
  j.attempts = 2;
  j.retry_wait_s = 60.0;
  j.engine_used = "mps";
  j.degradation = "";
  j.failure_log = {"attempt 1: transient device error: injected"};
  r.jobs.push_back(j);

  const Json doc = batch_checkpoint_json(r, 42);
  const BatchReport back = batch_checkpoint_from_json(Json::parse(doc.dump()), 42);
  ASSERT_EQ(back.jobs.size(), 1u);
  EXPECT_EQ(back.jobs[0].device_time_s, j.device_time_s);  // bitwise
  EXPECT_EQ(back.jobs[0].lowest_energy, j.lowest_energy);
  EXPECT_EQ(back.jobs[0].retry_wait_s, j.retry_wait_s);
  EXPECT_EQ(back.jobs[0].failure_log, j.failure_log);
  EXPECT_EQ(job_status_name(back.jobs[0].status), std::string("retried"));
}

TEST(BatchResilience, CorruptOrMismatchedCheckpointRefusesToResume) {
  InjectorGuard guard;
  const std::string dir = scratch_dir("corrupt");
  const std::string path = dir + "/ckpt.json";

  BatchOptions opt;
  opt.run_vqe = false;
  opt.checkpoint_path = path;
  const auto subset = first_s_entries(2);

  // Corrupt file: typed IoError, no silent restart-from-zero.
  write_file(path, "{ this is not json");
  EXPECT_THROW(run_batch(subset, opt), IoError);

  // Valid checkpoint, different options: fingerprint mismatch.
  std::filesystem::remove(path);
  (void)run_batch(subset, opt);
  BatchOptions other = opt;
  other.usd_per_second = 99.0;
  EXPECT_THROW(run_batch(subset, other), Error);

  std::filesystem::remove_all(dir);
}

TEST(BatchResilience, AtomicWritePreservesOldContentOnFault) {
  InjectorGuard guard;
  const std::string dir = scratch_dir("atomic");
  const std::string path = dir + "/file.json";

  write_file_atomic(path, "old-content");
  EXPECT_EQ(read_file(path), "old-content");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  FaultSiteConfig cfg;
  cfg.trigger_on_nth = 1;
  cfg.kind = FaultKind::Io;
  FaultInjector::instance().configure("io.write", cfg);
  {
    FaultScope scope("atomic-test", 1);
    EXPECT_THROW(write_file_atomic(path, "new-content"), IoError);
  }
  // The destination is untouched: readers never observe a torn write.
  EXPECT_EQ(read_file(path), "old-content");

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace qdb
