// Failure-injection and robustness tests: malformed inputs, boundary sizes,
// and degenerate geometry must fail loudly (typed exceptions) or degrade
// gracefully — never crash or return garbage silently.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/json.h"
#include "common/rng.h"
#include "dock/dock.h"
#include "dock/ligand_gen.h"
#include "lattice/hamiltonian.h"
#include "lattice/solver.h"
#include "quantum/mps.h"
#include "quantum/statevector.h"
#include "structure/pdb.h"
#include "structure/reconstruct.h"

namespace qdb {
namespace {

TEST(Robustness, TruncatedPdbRecordsThrowParseError) {
  // Truncated coordinate field.
  EXPECT_THROW(parse_pdb("ATOM      1  CA  ALA A   1      0.000   0.0"), ParseError);
  // Garbage in a numeric column.
  EXPECT_THROW(
      parse_pdb("ATOM      1  CA  ALA A   1      xx.xxx   0.000   0.000  1.00  0.00"),
      ParseError);
  // Unknown residue type.
  EXPECT_THROW(
      parse_pdb("ATOM      1  CA  QQQ A   1      0.000   0.000   0.000  1.00  0.00"),
      ParseError);
}

TEST(Robustness, PdbIgnoresNonAtomRecords) {
  const std::string text =
      "HEADER    test\n"
      "REMARK    anything at all\n"
      "ATOM      1  CA  ALA A   1      1.000   2.000   3.000  1.00  0.00           C\n"
      "TER\nEND\n";
  const Structure s = parse_pdb(text);
  EXPECT_EQ(s.num_residues(), 1);
  EXPECT_NEAR(s.residues[0].atoms[0].pos.y, 2.0, 1e-9);
}

TEST(Robustness, MissingBackboneAtomsThrow) {
  Structure s;
  Residue r;
  r.type = AminoAcid::Ala;
  r.atoms.push_back(Atom{"CB", 'C', {0, 0, 0}, 0.0});
  s.residues.push_back(r);
  EXPECT_THROW(s.ca_positions(), PreconditionError);
  EXPECT_THROW(s.backbone_positions(), PreconditionError);
}

TEST(Robustness, JsonDeepNestingParses) {
  std::string doc;
  for (int i = 0; i < 60; ++i) doc += "[";
  doc += "1";
  for (int i = 0; i < 60; ++i) doc += "]";
  EXPECT_NO_THROW(Json::parse(doc));
}

TEST(Robustness, JsonNanDumpsAsNull) {
  Json j = Json::object();
  j.set("v", std::nan(""));
  EXPECT_NE(j.dump().find("null"), std::string::npos);
}

TEST(Robustness, EncodeTurnsRejectsBrokenGauge) {
  EXPECT_THROW(encode_turns({1, 1, 2, 3}), PreconditionError);   // t0 != 0
  EXPECT_THROW(encode_turns({0, 0, 2, 3}), PreconditionError);   // t1 != 1
  EXPECT_THROW(encode_turns({0, 1, 7, 3}), PreconditionError);   // bad index
  EXPECT_THROW(encode_turns({0, 1}), PreconditionError);         // too short
}

TEST(Robustness, HamiltonianBoundarySizes) {
  // Smallest legal fragment: 4 residues, one free turn.
  const FoldingHamiltonian tiny(parse_sequence("AAAA"), HamiltonianWeights::standard(4));
  EXPECT_EQ(tiny.num_qubits(), 2);
  for (std::uint64_t x = 0; x < 4; ++x) EXPECT_TRUE(std::isfinite(tiny.energy(x)));
  // Over the 64-bit encoding limit.
  const std::vector<AminoAcid> too_long(40, AminoAcid::Ala);
  EXPECT_THROW(FoldingHamiltonian(too_long, HamiltonianWeights::standard(14)),
               PreconditionError);
}

TEST(Robustness, ExactSolverOnHomopolymerTies) {
  // Fully degenerate sequence: many ties; the solver must stay deterministic.
  const FoldingHamiltonian h(parse_sequence("GGGGGGG"), HamiltonianWeights::standard(7));
  const SolveResult a = ExactSolver().solve(h);
  const SolveResult b = ExactSolver().solve(h);
  EXPECT_EQ(a.bitstring, b.bitstring);
  EXPECT_TRUE(is_self_avoiding(walk_positions(a.turns)));
}

TEST(Robustness, ReconstructCollinearTrace) {
  // A perfectly straight Calpha trace exercises the degenerate-frame path.
  std::vector<Vec3> line;
  for (int i = 0; i < 6; ++i) line.push_back(Vec3{3.8 * i, 0, 0});
  const Structure s = reconstruct_backbone(line, parse_sequence("AAAAAA"), "line");
  ASSERT_EQ(s.num_residues(), 6);
  for (const Residue& r : s.residues) {
    for (const Atom& a : r.atoms) {
      EXPECT_TRUE(std::isfinite(a.pos.x) && std::isfinite(a.pos.y) && std::isfinite(a.pos.z));
    }
  }
}

TEST(Robustness, MpsLongRangeGateViaSwapChain) {
  // A CX spanning the whole register routes through adjacent swaps.
  const int nq = 8;
  Circuit c(nq);
  c.h(0).cx(0, 7);
  Statevector sv(nq);
  sv.apply(c);
  MpsSimulator mps(nq);
  mps.apply(c);
  for (std::uint64_t x : {0ull, 129ull, 1ull, 128ull}) {
    EXPECT_NEAR(std::abs(mps.amplitude(x) - sv.amplitudes()[x]), 0.0, 1e-9) << x;
  }
}

TEST(Robustness, MpsWideRegister) {
  // 40 qubits: far beyond dense reach; product + neighbour entanglement.
  MpsSimulator mps(40);
  Circuit c(40);
  for (int q = 0; q < 40; ++q) c.ry(0.1 * q, q);
  for (int q = 0; q + 1 < 40; ++q) c.cx(q, q + 1);
  mps.apply(c);
  EXPECT_NEAR(mps.norm2(), 1.0, 1e-8);
  Rng rng(5);
  EXPECT_EQ(mps.sample(32, rng).size(), 32u);
}

TEST(Robustness, DockingDegenerateLigandAndTinyBox) {
  // Single-atom rigid ligand in a minimal box still produces a pose.
  std::vector<LigandAtom> one(1);
  one[0].name = "C1";
  one[0].element = 'C';
  one[0].hydrophobic = true;
  const Ligand lig({one.begin(), one.end()}, {}, "atom");

  const auto seq = parse_sequence("VKDRS");
  const FoldingHamiltonian h(seq, HamiltonianWeights::standard(5));
  const SolveResult g = ExactSolver().solve(h);
  std::vector<Vec3> trace;
  for (const IVec3& p : walk_positions(g.turns)) trace.push_back(lattice_to_cartesian(p));
  Structure rec = reconstruct_backbone(trace, seq, "tiny");
  rec.center_on_origin();

  DockingParams params;
  params.num_runs = 2;
  params.mc_steps = 50;
  params.box_center = Vec3{0, 0, 0};
  params.box_size = 2.0;
  const DockingResult r = dock(rec, lig, params);
  EXPECT_FALSE(r.poses.empty());
  EXPECT_TRUE(std::isfinite(r.best_affinity));
}

TEST(Robustness, LigandGeneratorExtremeOptions) {
  LigandGenOptions opt;
  opt.min_chains = opt.max_chains = 1;
  opt.min_chain_length = opt.max_chain_length = 1;
  const Ligand minimal = generate_ligand("xxxx", opt);
  EXPECT_GE(minimal.num_atoms(), 7);  // ring + 1
  // A 1-atom chain has no rotatable bond.
  EXPECT_EQ(minimal.num_torsions(), 0);

  opt.min_chains = opt.max_chains = 6;
  opt.min_chain_length = opt.max_chain_length = 6;
  const Ligand big = generate_ligand("yyyy", opt);
  EXPECT_GE(big.num_atoms(), 30);
  EXPECT_GE(big.num_torsions(), 10);
}

TEST(Robustness, StatevectorQubitLimitEnforced) {
  EXPECT_THROW(Statevector(0), PreconditionError);
  EXPECT_THROW(Statevector(31), PreconditionError);
}

}  // namespace
}  // namespace qdb
