// analyze fixture: the other half of the cycle — the DFS visits cycle_a.h
// first (sorted order), so THIS file's include is the reported back edge.
#pragma once

#include "common/cycle_a.h"

inline int cycle_b_value() { return 2; }
