// analyze fixture: one half of a deliberate file-level include cycle.
#pragma once

#include "common/cycle_b.h"

inline int cycle_a_value() { return 1; }
