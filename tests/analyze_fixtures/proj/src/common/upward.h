// analyze fixture: an upward include — common (layer 0) -> serve (layer 5).
#pragma once

#include "serve/handler.h"

// A commented-out upward include must NOT produce a second violation:
// #include "serve/zzz.h"
/* #include "serve/zzz.h" */

inline int upward_value() { return 4; }
