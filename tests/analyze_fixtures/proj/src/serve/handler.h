// analyze fixture: a serve-layer header whose include points DOWN the layer
// map (legal), and which reaches a file that sits on the cycle — the cycle
// must still be reported exactly once.
#pragma once

#include "common/cycle_a.h"

inline int serve_fixture_value() { return cycle_a_value(); }
