// analyze fixture: one lock-hygiene violation per marked line;
// tests/test_analyze.cpp asserts these exact file:line pairs.
#include "serve/handler.h"

namespace fixture {

std::mutex g_mu;               // line 7: unannotated-mutex
std::condition_variable g_cv;  // line 8: unannotated-mutex

void hygiene(std::thread& worker) {
  g_mu.lock();                // line 11: naked-lock
  std::unique_lock lk(g_mu);  // line 12: unannotated-mutex
  g_cv.wait(lk);              // line 13: cv-wait-no-predicate
  g_mu.unlock();              // line 14: naked-lock
  worker.detach();            // line 15: thread-detach
}

// Near-misses that must stay silent: a predicated wait, a free-function
// wait, and a try_lock (different token from lock/unlock).
void quiet(int lk) {
  g_cv.wait(lk, [] { return true; });
  wait(nullptr);
  (void)g_mu.try_lock();
}

}  // namespace fixture
