// analyze fixture: a src/ module that is absent from the declared layer map.
#pragma once

inline int widget_value() { return 3; }
