// Fixture: screen (layer 4) reaching up into serve (layer 6) must be
// rejected as a layer-violation — the funnel may never know about HTTP.
#pragma once

#include "serve/handler.h"
