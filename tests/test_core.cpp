// Tests for src/core: the Pipeline public API — predictions per method,
// evaluation metrics, win-rate accounting, batch runs, and dataset builds.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "common/error.h"
#include "core/qdockbank.h"

namespace qdb {
namespace {

PipelineOptions tiny_options() {
  PipelineOptions o = PipelineOptions::bench_profile();
  o.vqe.max_evaluations = 30;
  o.vqe.shots_per_eval = 128;
  o.vqe.final_shots = 2000;
  o.docking.num_runs = 4;
  o.docking.mc_steps = 300;
  return o;
}

TEST(PipelineOptions, ProfilesMatchPaperBudgets) {
  const PipelineOptions paper = PipelineOptions::paper_profile();
  EXPECT_GE(paper.vqe.max_evaluations, 200);
  EXPECT_EQ(paper.vqe.final_shots, 100000u);
  EXPECT_EQ(paper.docking.num_runs, 20);

  const PipelineOptions bench = PipelineOptions::bench_profile();
  EXPECT_LT(bench.vqe.max_evaluations, paper.vqe.max_evaluations);
  EXPECT_LT(bench.vqe.final_shots, paper.vqe.final_shots);
}

TEST(PipelineOptions, EnvSwitchSelectsPaperProfile) {
  setenv("QDB_FULL", "1", 1);
  EXPECT_EQ(PipelineOptions::from_env().vqe.final_shots, 100000u);
  setenv("QDB_FULL", "0", 1);
  EXPECT_LT(PipelineOptions::from_env().vqe.final_shots, 100000u);
  unsetenv("QDB_FULL");
}

TEST(Pipeline, MethodNames) {
  EXPECT_STREQ(method_name(Method::QDock), "QDock");
  EXPECT_STREQ(method_name(Method::AF3), "AF3");
  EXPECT_STREQ(method_name(Method::Exact), "Exact");
}

TEST(Pipeline, PredictionsForEveryMethod) {
  const Pipeline pipeline(tiny_options());
  const DatasetEntry& e = entry_by_id("3ckz");  // smallest fragment
  for (Method m : {Method::QDock, Method::AF2, Method::AF3, Method::Annealing,
                   Method::Greedy, Method::Exact}) {
    const Prediction p = pipeline.predict(e, m);
    EXPECT_EQ(p.method, m);
    EXPECT_EQ(p.structure.sequence(), "VKDRS") << method_name(m);
    EXPECT_EQ(p.structure.residues.front().seq_number, 149) << method_name(m);
    EXPECT_EQ(p.vqe.has_value(), m == Method::QDock) << method_name(m);
  }
}

TEST(Pipeline, QDockFindsExactOptimumOnTinyFragment) {
  const Pipeline pipeline(tiny_options());
  const DatasetEntry& e = entry_by_id("3eax");  // 4 qubits
  const Prediction qdock = pipeline.predict(e, Method::QDock);
  const Prediction exact = pipeline.predict(e, Method::Exact);
  // 5-residue fragments have no contact pairs, so minima can be degenerate:
  // compare energies rather than geometry.
  EXPECT_NEAR(qdock.conformation_energy, exact.conformation_energy, 1e-9);
}

TEST(Pipeline, ReferenceAndLigandAreCached) {
  const Pipeline pipeline(tiny_options());
  const DatasetEntry& e = entry_by_id("1e2k");
  const Structure& r1 = pipeline.reference(e);
  const Structure& r2 = pipeline.reference(e);
  EXPECT_EQ(&r1, &r2);
  const Ligand& l1 = pipeline.ligand(e);
  const Ligand& l2 = pipeline.ligand(e);
  EXPECT_EQ(&l1, &l2);
}

TEST(Pipeline, EvaluationProducesBothPaperMetrics) {
  const Pipeline pipeline(tiny_options());
  const DatasetEntry& e = entry_by_id("3s0b");
  const Evaluation ev = pipeline.evaluate(e, Method::QDock);
  EXPECT_EQ(ev.pdb_id, "3s0b");
  EXPECT_EQ(ev.group, Group::S);
  EXPECT_GT(ev.rmsd, 0.0);     // reference is off-lattice: never exactly 0
  EXPECT_LT(ev.rmsd, 10.0);
  EXPECT_LT(ev.affinity, 0.0); // something binds
  EXPECT_LE(ev.affinity, ev.mean_affinity + 1e-12);
  EXPECT_LE(ev.pose_rmsd_lb, ev.pose_rmsd_ub + 1e-12);
}

TEST(Pipeline, QDockBeatsSurrogateOnRmsdForFoldedFragment) {
  // The paper's central claim on a single entry: the physics-driven method
  // tracks the reference (which sits at the energy minimum) better than the
  // prior-driven surrogate.
  const Pipeline pipeline(tiny_options());
  const DatasetEntry& e = entry_by_id("1e2l");
  const Evaluation qdock = pipeline.evaluate(e, Method::QDock);
  const Evaluation af2 = pipeline.evaluate(e, Method::AF2);
  EXPECT_LT(qdock.rmsd, af2.rmsd);
}

TEST(Pipeline, DeterministicAcrossPipelineInstances) {
  const DatasetEntry& e = entry_by_id("6czf");
  const Evaluation a = Pipeline(tiny_options()).evaluate(e, Method::QDock);
  const Evaluation b = Pipeline(tiny_options()).evaluate(e, Method::QDock);
  EXPECT_DOUBLE_EQ(a.rmsd, b.rmsd);
  EXPECT_DOUBLE_EQ(a.affinity, b.affinity);
}

TEST(Pipeline, GroupBatchKeepsOrderAndGroup) {
  const Pipeline pipeline(tiny_options());
  const auto evals = pipeline.evaluate_group(Group::S, Method::Greedy);
  const auto entries = entries_in_group(Group::S);
  ASSERT_EQ(evals.size(), entries.size());
  for (std::size_t i = 0; i < evals.size(); ++i) {
    EXPECT_EQ(evals[i].pdb_id, entries[i]->pdb_id);
    EXPECT_EQ(evals[i].group, Group::S);
  }
}

TEST(WinRatesFn, CountsStrictWins) {
  Evaluation a, b;
  a.pdb_id = b.pdb_id = "x";
  a.affinity = -5.0; a.rmsd = 1.0;
  b.affinity = -4.0; b.rmsd = 0.5;
  const WinRates w = win_rates({a}, {b});
  EXPECT_EQ(w.entries, 1);
  EXPECT_EQ(w.affinity_wins, 1);  // -5 < -4
  EXPECT_EQ(w.rmsd_wins, 0);      // 1.0 > 0.5
  EXPECT_DOUBLE_EQ(w.affinity_rate(), 1.0);
  EXPECT_DOUBLE_EQ(w.rmsd_rate(), 0.0);

  Evaluation c = a;
  c.pdb_id = "y";
  EXPECT_THROW(win_rates({a}, {c}), PreconditionError);
  EXPECT_THROW(win_rates({a, a}, {b}), PreconditionError);
}

TEST(Pipeline, BuildDatasetWritesAllGroupsForSubset) {
  // Full 55-entry builds belong to the bench; here, verify the writer path
  // through build-dataset-equivalent calls on a few entries.
  const Pipeline pipeline(tiny_options());
  const std::string root = testing::TempDir() + "/qdb_core_build";
  for (const char* id : {"3eax", "1e2l"}) {
    const DatasetEntry& e = entry_by_id(id);
    const Prediction pred = pipeline.predict(e, Method::QDock);
    const DockingResult d = pipeline.dock_prediction(e, pred);
    write_entry_files(root, e, pred.structure, *pred.vqe, d,
                      ca_rmsd(pred.structure, pipeline.reference(e)));
  }
  EXPECT_TRUE(std::filesystem::exists(root + "/S/3eax/structure.pdb"));
  EXPECT_TRUE(std::filesystem::exists(root + "/M/1e2l/metadata.json"));
  EXPECT_TRUE(std::filesystem::exists(root + "/M/1e2l/docking.json"));
}

}  // namespace
}  // namespace qdb
