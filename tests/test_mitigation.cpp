// Tests for quantum/mitigation: readout-error mitigation recovers ideal
// statistics from corrupted shots.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "quantum/mitigation.h"
#include "quantum/statevector.h"

namespace qdb {
namespace {

TEST(Mitigation, HistogramFromShots) {
  const Histogram h = histogram_from_shots({0, 1, 1, 3, 3, 3});
  EXPECT_DOUBLE_EQ(h.at(0), 1.0);
  EXPECT_DOUBLE_EQ(h.at(1), 2.0);
  EXPECT_DOUBLE_EQ(h.at(3), 3.0);
}

TEST(Mitigation, IdentityWhenNoiseIsIdeal) {
  const ReadoutMitigator m(3, NoiseModel::ideal());
  const Histogram h = histogram_from_shots({0, 5, 5, 7});
  const Histogram out = m.mitigate(h);
  for (const auto& [x, w] : h) {
    EXPECT_NEAR(out.at(x), w, 1e-12) << x;
  }
}

TEST(Mitigation, InvertsKnownSingleQubitFlip) {
  // Prepared all |0>; readout flips 0->1 with p01 = 0.2.  A large measured
  // sample has ~20% ones; mitigation must restore ~100% zeros.
  NoiseModel noise;
  noise.p_readout_01 = 0.2;
  Rng rng(3);
  std::vector<std::uint64_t> shots(50000, 0);
  apply_readout_error(shots, 1, noise, rng);

  const ReadoutMitigator m(1, noise);
  const Histogram corrected = m.mitigate(histogram_from_shots(shots));
  const double total = 50000.0;
  EXPECT_NEAR(corrected.at(0) / total, 1.0, 0.02);
  // Whatever weight remains on |1> is statistical noise around zero.
  const double ones = corrected.count(1) ? corrected.at(1) / total : 0.0;
  EXPECT_NEAR(ones, 0.0, 0.02);
}

TEST(Mitigation, RecoversExpectationOnEntangledState) {
  // GHZ state on 4 qubits measured through asymmetric readout errors; the
  // mitigated parity expectation must be far closer to the ideal value.
  const int nq = 4;
  Circuit c(nq);
  c.h(0);
  for (int q = 0; q + 1 < nq; ++q) c.cx(q, q + 1);
  Statevector sv(nq);
  sv.apply(c);

  auto parity = [](std::uint64_t x) {
    return (__builtin_popcountll(x) % 2 == 0) ? 1.0 : -1.0;
  };
  const double ideal = sv.expectation_diagonal(parity);  // +1 for GHZ

  NoiseModel noise;
  noise.p_readout_01 = 0.03;
  noise.p_readout_10 = 0.08;
  Rng rng(17);
  auto shots = sv.sample(60000, rng);
  apply_readout_error(shots, nq, noise, rng);
  const Histogram measured = histogram_from_shots(shots);

  double raw = 0.0;
  for (const auto& [x, w] : measured) raw += w * parity(x);
  raw /= 60000.0;

  const ReadoutMitigator m(nq, noise);
  const double mitigated = m.mitigated_expectation(measured, parity);

  EXPECT_GT(std::abs(raw - ideal), 0.1);          // errors visibly bias raw
  EXPECT_LT(std::abs(mitigated - ideal), 0.03);   // mitigation recovers it
}

TEST(Mitigation, PreservesTotalWeight) {
  NoiseModel noise;
  noise.p_readout_01 = 0.05;
  noise.p_readout_10 = 0.1;
  const ReadoutMitigator m(3, noise);
  const Histogram h = histogram_from_shots({0, 1, 2, 3, 4, 5, 6, 7, 7, 7});
  const Histogram out = m.mitigate(h);
  double total = 0.0;
  for (const auto& [x, w] : out) {
    (void)x;
    total += w;
  }
  EXPECT_NEAR(total, 10.0, 1e-6);
}

TEST(Mitigation, RejectsDegenerateCalibration) {
  NoiseModel noise;
  noise.p_readout_01 = 0.5;
  noise.p_readout_10 = 0.5;  // singular confusion matrix
  EXPECT_THROW(ReadoutMitigator(2, noise), PreconditionError);
}

}  // namespace
}  // namespace qdb
