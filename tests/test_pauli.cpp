// Tests for quantum/pauli: the diagonal Pauli-Z operator representation,
// the exact Walsh-Hadamard expansion, and its link to the folding
// Hamiltonian's identity coefficient (the energy floor of Tables 1-3).
#include <gtest/gtest.h>

#include <bit>

#include "common/error.h"
#include "common/rng.h"
#include "lattice/hamiltonian.h"
#include "quantum/pauli.h"
#include "quantum/statevector.h"

namespace qdb {
namespace {

TEST(Pauli, SingleTermValues) {
  DiagonalPauliOp op(2);
  op.add(0b01, 1.0);  // Z on qubit 0
  EXPECT_DOUBLE_EQ(op.value(0b00), 1.0);
  EXPECT_DOUBLE_EQ(op.value(0b01), -1.0);
  EXPECT_DOUBLE_EQ(op.value(0b10), 1.0);
  EXPECT_DOUBLE_EQ(op.value(0b11), -1.0);
}

TEST(Pauli, ZzParity) {
  DiagonalPauliOp op(2);
  op.add(0b11, 2.0);  // Z0 Z1
  EXPECT_DOUBLE_EQ(op.value(0b00), 2.0);
  EXPECT_DOUBLE_EQ(op.value(0b01), -2.0);
  EXPECT_DOUBLE_EQ(op.value(0b10), -2.0);
  EXPECT_DOUBLE_EQ(op.value(0b11), 2.0);
}

TEST(Pauli, AddMergesDuplicateMasks) {
  DiagonalPauliOp op(3);
  op.add(0b101, 1.0);
  op.add(0b101, 0.5);
  op.add(0, 3.0);
  EXPECT_EQ(op.num_terms(), 2u);
  EXPECT_DOUBLE_EQ(op.identity_coefficient(), 3.0);
  EXPECT_DOUBLE_EQ(op.value(0), 4.5);
  EXPECT_THROW(op.add(0b1000, 1.0), PreconditionError);
}

TEST(Pauli, ExpansionReconstructsArbitraryFunction) {
  Rng rng(5);
  const int nq = 6;
  std::vector<double> f(1 << nq);
  for (double& v : f) v = rng.uniform(-10, 10);
  const auto op = DiagonalPauliOp::from_function(nq, [&](std::uint64_t x) { return f[x]; });
  for (std::uint64_t x = 0; x < (1u << nq); ++x) {
    EXPECT_NEAR(op.value(x), f[x], 1e-9) << x;
  }
}

TEST(Pauli, ExpansionOfConstantIsIdentityOnly) {
  const auto op = DiagonalPauliOp::from_function(4, [](std::uint64_t) { return 7.5; });
  EXPECT_EQ(op.num_terms(), 1u);
  EXPECT_DOUBLE_EQ(op.identity_coefficient(), 7.5);
}

TEST(Pauli, IdentityCoefficientIsMeanValue) {
  // The identity coefficient of any diagonal operator equals its average
  // over all bitstrings — the formal basis of the Hamiltonian's energy
  // floor story.
  const auto seq = parse_sequence("PWWERYQP");  // 10 free-turn bits
  const FoldingHamiltonian h(seq, HamiltonianWeights::standard(8));
  const auto op = DiagonalPauliOp::from_function(
      h.num_qubits(), [&](std::uint64_t x) { return h.energy(x); });

  double mean = 0.0;
  const std::uint64_t dim = std::uint64_t{1} << h.num_qubits();
  for (std::uint64_t x = 0; x < dim; ++x) mean += h.energy(x);
  mean /= static_cast<double>(dim);
  EXPECT_NEAR(op.identity_coefficient(), mean, 1e-6 * std::abs(mean));
  // The configured offset is part of (but smaller than) that mean: penalty
  // states raise the average above the floor.
  EXPECT_GT(op.identity_coefficient(), h.weights().energy_offset);
}

TEST(Pauli, HamiltonianExpansionMatchesDirectEvaluation) {
  const auto seq = parse_sequence("VKDRS");
  const FoldingHamiltonian h(seq, HamiltonianWeights::standard(5));
  const auto op = DiagonalPauliOp::from_function(
      h.num_qubits(), [&](std::uint64_t x) { return h.energy(x); });
  for (std::uint64_t x = 0; x < 16; ++x) {
    EXPECT_NEAR(op.value(x), h.energy(x), 1e-9);
  }
}

TEST(Pauli, ExpectationMatchesStatevector) {
  DiagonalPauliOp op(3);
  op.add(0b001, 1.0);
  op.add(0b110, -2.0);
  op.add(0, 0.5);

  Statevector sv(3);
  Circuit c(3);
  c.h(0).ry(0.7, 1).cx(1, 2);
  sv.apply(c);

  const double direct = sv.expectation_diagonal([&](std::uint64_t x) { return op.value(x); });
  EXPECT_NEAR(op.expectation(sv), direct, 1e-12);

  Statevector wrong(2);
  EXPECT_THROW(op.expectation(wrong), PreconditionError);
}

TEST(Pauli, ExpansionToleranceDropsSmallTerms) {
  // A pure ZZ function expands to exactly one term; loose tolerance must
  // not invent extra ones.
  const auto op = DiagonalPauliOp::from_function(
      4, [](std::uint64_t x) { return (std::popcount(x & 0b11ull) % 2 == 0) ? 1.0 : -1.0; });
  EXPECT_EQ(op.num_terms(), 1u);
  EXPECT_EQ(op.terms()[0].mask, 0b11u);
}

}  // namespace
}  // namespace qdb
