// Tests for tools/qdb_analyze: the declared layer map, include-graph
// construction, architecture rules (cycle / upward include / unknown module)
// with exact file:line assertions against tests/analyze_fixtures/proj, the
// lock-hygiene token rules and their near-misses, allowlist round-trip with
// stale-entry detection, Graphviz output, and the repo-gate property that
// the real tree is clean under the checked-in allowlist.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/qdb_analyze.h"

namespace qdb::analyze {
namespace {

const std::string kFixtureRoot =
    std::string(QDB_SOURCE_DIR) + "/tests/analyze_fixtures/proj";

std::vector<Diagnostic> of_rule(const std::vector<Diagnostic>& diags,
                                const std::string& rule) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) out.push_back(d);
  }
  return out;
}

bool has_at(const std::vector<Diagnostic>& diags, const std::string& file,
            int line, const std::string& rule) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.file == file && d.line == line && d.rule == rule;
  });
}

// --- layer map --------------------------------------------------------------

TEST(LayerMap, DeclaredModulesGetTheirLayersAndUnknownsGetMinusOne) {
  EXPECT_EQ(layer_of("common"), 0);
  EXPECT_EQ(layer_of("obs"), 1);
  EXPECT_EQ(layer_of("quantum"), 2);
  EXPECT_EQ(layer_of("transpile"), 2);  // same layer as quantum (peer cycle)
  EXPECT_EQ(layer_of("vqe"), 3);
  EXPECT_EQ(layer_of("screen"), 4);
  EXPECT_EQ(layer_of("store"), 5);
  EXPECT_EQ(layer_of("serve"), 6);
  EXPECT_EQ(layer_of("orchestrate"), 7);
  EXPECT_EQ(layer_of("gadgets"), -1);
  EXPECT_EQ(layer_of(""), -1);
}

TEST(LayerMap, MapIsSortedByLayerThenName) {
  const auto map = layer_map();
  ASSERT_FALSE(map.empty());
  EXPECT_EQ(map.front().first, "common");
  EXPECT_EQ(map.back().first, "orchestrate");
  for (std::size_t i = 1; i < map.size(); ++i) {
    EXPECT_LE(map[i - 1].second, map[i].second);
  }
}

// --- include graph ----------------------------------------------------------

TEST(IncludeGraph, ParsesQuotedIncludesWithModulesAndLines) {
  const IncludeGraph g = build_include_graph(kFixtureRoot, {"src"});
  EXPECT_EQ(g.files.size(), 7u);
  EXPECT_EQ(g.module_of.at("src/common/upward.h"), "common");
  EXPECT_EQ(g.module_of.at("src/serve/handler.cpp"), "serve");
  // upward.h has exactly ONE edge: the commented-out includes are skipped.
  int upward_edges = 0;
  for (const IncludeEdge& e : g.edges) {
    if (e.from_file != "src/common/upward.h") continue;
    ++upward_edges;
    EXPECT_EQ(e.to_file, "serve/handler.h");
    EXPECT_EQ(e.line, 4);
  }
  EXPECT_EQ(upward_edges, 1);
}

// --- architecture rules (exact file:line against the fixture project) ------

TEST(Architecture, FixtureProjectProducesEachDiagnosticAtItsExactLine) {
  const std::vector<Diagnostic> diags =
      check_architecture(build_include_graph(kFixtureRoot, {"src"}));
  // The DFS visits cycle_a.h first (sorted order), so the back edge is
  // cycle_b.h's include on line 5 — and the cycle is reported exactly once
  // even though serve/handler.h also reaches it.
  const auto cycles = of_rule(diags, "include-cycle");
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].file, "src/common/cycle_b.h");
  EXPECT_EQ(cycles[0].line, 5);
  EXPECT_NE(cycles[0].message.find("src/common/cycle_a.h -> src/common/cycle_b.h "
                                   "-> src/common/cycle_a.h"),
            std::string::npos);

  // Two upward includes: common -> serve and screen -> serve. The second is
  // the fixture for the screening funnel: screen (layer 4) must never see
  // the HTTP layer.
  const auto upward = of_rule(diags, "layer-violation");
  ASSERT_EQ(upward.size(), 2u);
  EXPECT_TRUE(has_at(upward, "src/common/upward.h", 4, "layer-violation"));
  EXPECT_TRUE(has_at(upward, "src/screen/filter.h", 5, "layer-violation"));

  const auto unknown = of_rule(diags, "unknown-module");
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0].file, "src/gadgets/widget.h");
  EXPECT_EQ(unknown[0].line, 1);

  EXPECT_EQ(diags.size(), 4u);  // nothing else fires
}

TEST(Architecture, DownwardAndSameLayerIncludesAreLegal) {
  IncludeGraph g;
  g.files = {"src/quantum/gate.h", "src/serve/server.cpp", "src/transpile/pass.h"};
  g.module_of = {{"src/quantum/gate.h", "quantum"},
                 {"src/serve/server.cpp", "serve"},
                 {"src/transpile/pass.h", "transpile"}};
  g.edges = {{"src/serve/server.cpp", "quantum/gate.h", 10},   // downward
             {"src/quantum/gate.h", "transpile/pass.h", 3}};   // same layer
  EXPECT_TRUE(check_architecture(g).empty());
}

// --- lock hygiene (exact file:line via the fixture) -------------------------

TEST(LockHygiene, FixtureProjectProducesEachDiagnosticAtItsExactLine) {
  const std::vector<Diagnostic> diags = analyze_tree(kFixtureRoot, {"src"});
  const std::string f = "src/serve/handler.cpp";
  EXPECT_TRUE(has_at(diags, f, 7, "unannotated-mutex"));   // std::mutex
  EXPECT_TRUE(has_at(diags, f, 8, "unannotated-mutex"));   // std::condition_variable
  EXPECT_TRUE(has_at(diags, f, 11, "naked-lock"));         // .lock()
  EXPECT_TRUE(has_at(diags, f, 12, "unannotated-mutex"));  // std::unique_lock
  EXPECT_TRUE(has_at(diags, f, 13, "cv-wait-no-predicate"));
  EXPECT_TRUE(has_at(diags, f, 14, "naked-lock"));         // .unlock()
  EXPECT_TRUE(has_at(diags, f, 15, "thread-detach"));
  // 7 hygiene findings + 4 architecture findings, nothing more: the
  // predicated wait, free-function wait() and try_lock() stay silent.
  EXPECT_EQ(diags.size(), 11u);
}

TEST(LockHygiene, WaitVariantsRequireTheirPredicateArity) {
  const std::string two_arg_wait_for = "void f() { cv.wait_for(lk, ms); }";
  EXPECT_EQ(of_rule(check_lock_hygiene("src/a.cpp", two_arg_wait_for),
                    "cv-wait-no-predicate")
                .size(),
            1u);
  const std::string ok =
      "void f() { cv.wait_for(lk, ms, [] { return done; }); "
      "cv.wait_until(lk, tp, pred); cv_.wait_for_ms(mu_, 50, pred); }";
  EXPECT_TRUE(of_rule(check_lock_hygiene("src/a.cpp", ok), "cv-wait-no-predicate")
                  .empty());
  // wait_for_ms must not be mistaken for wait_for (token boundary).
  const std::string qdb_wait = "void f() { cv_.wait_for_ms(mu_, 50, pred); }";
  EXPECT_TRUE(check_lock_hygiene("src/a.cpp", qdb_wait).empty());
}

TEST(LockHygiene, SrcOnlyRulesAreSilentInTestsButDetachIsNot) {
  const std::string text =
      "void f(std::thread& t) { std::mutex m; m.lock(); m.unlock(); t.detach(); }";
  const std::vector<Diagnostic> in_tests = check_lock_hygiene("tests/a.cpp", text);
  EXPECT_EQ(in_tests.size(), 1u);  // only the detach: repo-wide rule
  EXPECT_EQ(in_tests[0].rule, "thread-detach");
  const std::vector<Diagnostic> in_src = check_lock_hygiene("src/m/a.cpp", text);
  EXPECT_EQ(of_rule(in_src, "naked-lock").size(), 2u);
  EXPECT_EQ(of_rule(in_src, "unannotated-mutex").size(), 1u);  // std::mutex only
  EXPECT_EQ(of_rule(in_src, "thread-detach").size(), 1u);
}

TEST(LockHygiene, CommentsStringsAndRaiiGuardsAreNotHits) {
  const std::string ok =
      "// mu.lock() in a comment\n"
      "const char* s = \"cv.wait(lk)\";\n"
      "void f() { const MutexLock lock(mu_); my_unlock(); relock(); }\n";
  EXPECT_TRUE(check_lock_hygiene("src/m/a.cpp", ok).empty());
}

// --- allowlist round-trip ---------------------------------------------------

TEST(Allowlist, SuppressesMatchedRulesAndFlagsStaleEntries) {
  const std::vector<Diagnostic> diags = analyze_tree(kFixtureRoot, {"src"});
  const std::vector<AllowEntry> allow = parse_allowlist(
      "# fixture allowlist\n"
      "src/serve/handler.cpp naked-lock\n"
      "src/serve/handler.cpp no-such-rule\n");
  std::vector<AllowEntry> unused;
  const std::vector<Diagnostic> kept = apply_allowlist(diags, allow, &unused);
  EXPECT_EQ(kept.size(), diags.size() - 2);  // both naked-lock hits suppressed
  EXPECT_TRUE(of_rule(kept, "naked-lock").empty());
  ASSERT_EQ(unused.size(), 1u);  // the stale entry is reported, not ignored
  EXPECT_EQ(unused[0].file, "src/serve/handler.cpp");
  EXPECT_EQ(unused[0].rule, "no-such-rule");
}

// --- Graphviz output --------------------------------------------------------

TEST(GraphDot, RanksLayersAndPaintsUnknownModulesRed) {
  const std::string dot = graph_dot(build_include_graph(kFixtureRoot, {"src"}));
  EXPECT_NE(dot.find("digraph qdb_include_graph"), std::string::npos);
  EXPECT_NE(dot.find("{ rank=same; \"common\"; }  // layer 0"), std::string::npos);
  EXPECT_NE(dot.find("{ rank=same; \"screen\"; }  // layer 4"), std::string::npos);
  EXPECT_NE(dot.find("{ rank=same; \"serve\"; }  // layer 6"), std::string::npos);
  EXPECT_NE(dot.find("\"common\" -> \"serve\";"), std::string::npos);
  EXPECT_NE(dot.find("\"screen\" -> \"serve\";"), std::string::npos);
  EXPECT_NE(dot.find("\"serve\" -> \"common\";"), std::string::npos);
  EXPECT_NE(dot.find("\"gadgets\" [color=red"), std::string::npos);
}

// --- repo gate --------------------------------------------------------------

TEST(RepoGate, FixtureTreesAreSkippedAndTheRepoAnalyzesClean) {
  std::ifstream in(std::string(QDB_SOURCE_DIR) + "/tools/qdb_analyze_allow.txt");
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::vector<AllowEntry> allow = parse_allowlist(buf.str());
  std::vector<AllowEntry> unused;
  const std::vector<Diagnostic> diags = apply_allowlist(
      analyze_tree(QDB_SOURCE_DIR, {"src", "tests", "bench", "examples", "tools"}),
      allow, &unused);
  for (const Diagnostic& d : diags) {
    ADD_FAILURE() << format_diagnostic(d);
  }
  for (const AllowEntry& e : unused) {
    ADD_FAILURE() << "stale allowlist entry: " << e.file << " " << e.rule;
  }
  // The deliberately-broken fixture project must NOT leak into the repo
  // scan: its cycle would otherwise appear here.
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.file.find("analyze_fixtures"), std::string::npos);
  }
}

}  // namespace
}  // namespace qdb::analyze
