// Tests for src/optimize: convergence of each optimizer on standard test
// functions (convex, ill-conditioned, noisy, multimodal) plus interface
// contracts (budgets, history, determinism).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.h"
#include "common/rng.h"
#include "optimize/cobyla.h"
#include "optimize/nelder_mead.h"
#include "optimize/random_search.h"
#include "optimize/spsa.h"

namespace qdb {
namespace {

double sphere(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return s;
}

double shifted_quadratic(const std::vector<double>& x) {
  // Minimum 1.5 at (1, -2, 0.5).
  const double t[3] = {1.0, -2.0, 0.5};
  double s = 1.5;
  for (std::size_t i = 0; i < x.size(); ++i) s += (x[i] - t[i]) * (x[i] - t[i]);
  return s;
}

double rosenbrock2(const std::vector<double>& x) {
  return 100.0 * std::pow(x[1] - x[0] * x[0], 2) + std::pow(1.0 - x[0], 2);
}

std::vector<std::unique_ptr<Optimizer>> all_optimizers() {
  std::vector<std::unique_ptr<Optimizer>> out;
  out.push_back(std::make_unique<Cobyla>());
  out.push_back(std::make_unique<NelderMead>());
  out.push_back(std::make_unique<Spsa>());
  out.push_back(std::make_unique<RandomSearch>());
  return out;
}

TEST(Optimizers, AllConvergeOnSphere) {
  for (const auto& opt : all_optimizers()) {
    const OptimResult r = opt->minimize(sphere, {1.2, -0.7, 0.4}, 400);
    EXPECT_LT(r.fx, 0.05) << opt->name();
    EXPECT_LE(r.evaluations, 400) << opt->name();
  }
}

TEST(Optimizers, AllFindShiftedMinimum) {
  for (const auto& opt : all_optimizers()) {
    const OptimResult r = opt->minimize(shifted_quadratic, {0.0, 0.0, 0.0}, 600);
    EXPECT_LT(r.fx, 1.8) << opt->name();  // minimum value is 1.5
  }
}

TEST(Optimizers, HistoryIsMonotoneBestSoFar) {
  for (const auto& opt : all_optimizers()) {
    const OptimResult r = opt->minimize(sphere, {2.0, 2.0}, 120);
    ASSERT_EQ(static_cast<int>(r.history.size()), r.evaluations) << opt->name();
    for (std::size_t i = 1; i < r.history.size(); ++i) {
      EXPECT_LE(r.history[i], r.history[i - 1] + 1e-15) << opt->name();
    }
    EXPECT_DOUBLE_EQ(r.history.back(), r.fx) << opt->name();
  }
}

TEST(Optimizers, RespectEvaluationBudget) {
  for (const auto& opt : all_optimizers()) {
    const OptimResult r = opt->minimize(sphere, {1.0, 1.0, 1.0, 1.0}, 25);
    EXPECT_LE(r.evaluations, 25) << opt->name();
    EXPECT_GE(r.evaluations, 1) << opt->name();
  }
}

TEST(Optimizers, RejectBadArguments) {
  for (const auto& opt : all_optimizers()) {
    EXPECT_THROW(opt->minimize(sphere, {}, 10), PreconditionError) << opt->name();
    EXPECT_THROW(opt->minimize(sphere, {1.0}, 0), PreconditionError) << opt->name();
  }
}

TEST(Cobyla, DescendsRosenbrockValley) {
  // Rosenbrock is hard for linear models; require solid progress, not
  // convergence to the optimum.
  const OptimResult r = Cobyla().minimize(rosenbrock2, {-1.2, 1.0}, 2000);
  EXPECT_LT(r.fx, 2.0);  // from 24.2 at the start point
}

TEST(Cobyla, ToleratesNoisyObjective) {
  // Shot-noise regime: the observed minimum can dip below the true value, so
  // judge quality by the true objective at the returned point.
  Rng noise(123);
  auto noisy = [&](const std::vector<double>& x) { return sphere(x) + noise.normal(0.0, 0.05); };
  const OptimResult r = Cobyla().minimize(noisy, {1.5, -1.0}, 300);
  EXPECT_LT(sphere(r.x), 0.4);
}

TEST(Cobyla, HonoursRhoEndAsStopCriterion) {
  Cobyla::Options o;
  o.rho_begin = 0.5;
  o.rho_end = 0.2;  // coarse: should stop early
  const OptimResult coarse = Cobyla(o).minimize(sphere, {1.0, 1.0}, 10000);
  EXPECT_LT(coarse.evaluations, 200);
}

TEST(Spsa, DeterministicPerSeed) {
  Spsa::Options o;
  o.seed = 42;
  const OptimResult a = Spsa(o).minimize(sphere, {1.0, -1.0}, 100);
  const OptimResult b = Spsa(o).minimize(sphere, {1.0, -1.0}, 100);
  EXPECT_EQ(a.x, b.x);
  EXPECT_DOUBLE_EQ(a.fx, b.fx);
}

TEST(Spsa, HandlesHighDimension) {
  // SPSA's cost per step is dimension-independent: 2 evals regardless of n.
  std::vector<double> x0(40, 0.8);
  const OptimResult r = Spsa().minimize(sphere, x0, 400);
  EXPECT_LT(r.fx, sphere(x0) * 0.2);
}

TEST(RandomSearch, ImprovesOverInitialPoint) {
  RandomSearch::Options o;
  o.seed = 9;
  const OptimResult r = RandomSearch(o).minimize(sphere, {2.0, 2.0}, 200);
  EXPECT_LT(r.fx, sphere({2.0, 2.0}));
}

TEST(NelderMead, ConvergesOnRosenbrock) {
  const OptimResult r = NelderMead().minimize(rosenbrock2, {-1.2, 1.0}, 800);
  EXPECT_LT(r.fx, 0.1);
}

}  // namespace
}  // namespace qdb
