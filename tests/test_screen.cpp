// Tests for src/screen (ISSUE 9): the seeded combinatorial library, the
// precomputed receptor grid and its node-exactness contract, byte-stable
// grid serialization, checkpoint refusal semantics, funnel determinism
// across thread counts and kill+resume, report round-trips, and the strict
// /screen endpoint matrix over a socket-free DatasetServer.
#include <gtest/gtest.h>
#include <unistd.h>  // getpid for per-process scratch directories

#include <cmath>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "data/dataset_io.h"
#include "data/registry.h"
#include "dataset_fixture.h"
#include "dock/vina_score.h"
#include "lattice/lattice.h"
#include "lattice/solver.h"
#include "screen/funnel.h"
#include "screen/grid.h"
#include "screen/library.h"
#include "screen/report.h"
#include "serve/http.h"
#include "serve/screen_api.h"
#include "serve/server.h"
#include "store/store.h"
#include "structure/pdb.h"
#include "structure/protonate.h"
#include "structure/reconstruct.h"

namespace qdb::screen {
namespace {

namespace fs = std::filesystem;

/// Small folded fragment with donors and acceptors in reach (same recipe as
/// test_dock's receptor helper).
Structure test_receptor(const std::string& seq = "LKDCS") {
  const auto aa = parse_sequence(seq);
  FoldingHamiltonian h(aa, HamiltonianWeights::standard(static_cast<int>(aa.size())));
  const SolveResult ground = ExactSolver().solve(h);
  std::vector<Vec3> trace;
  for (const IVec3& p : walk_positions(ground.turns)) trace.push_back(lattice_to_cartesian(p));
  Structure s = reconstruct_backbone(trace, aa, "test");
  add_polar_hydrogens(s);
  assign_partial_charges(s);
  s.center_on_origin();
  return s;
}

/// Single probe atom with the library chemistry flags (C hydrophobic,
/// N donor, O acceptor) — the atoms the grid channels are exact for.
Ligand single_atom_ligand(char element) {
  std::vector<LigandAtom> atoms(1);
  atoms[0].name = "P1";
  atoms[0].element = element;
  atoms[0].local_pos = {0, 0, 0};
  atoms[0].hydrophobic = element == 'C';
  atoms[0].donor = element == 'N';
  atoms[0].acceptor = element == 'O';
  return Ligand(std::move(atoms), {}, "probe");
}

std::string scratch_path(const std::string& name) {
  return (fs::temp_directory_path() /
          ("qdb_screen_" + std::to_string(::getpid()) + "_" + name))
      .string();
}

// --- library ----------------------------------------------------------------

TEST(Library, LigandsArePureFunctionsOfSeedAndIndex) {
  const LibrarySpec spec{7, 64};
  for (std::uint64_t idx : {std::uint64_t{0}, std::uint64_t{13}, std::uint64_t{63}}) {
    const Ligand a = library_ligand(spec, idx);
    const Ligand b = library_ligand(spec, idx);
    ASSERT_EQ(a.num_atoms(), b.num_atoms());
    ASSERT_EQ(a.num_torsions(), b.num_torsions());
    const auto ca = a.conformation(a.neutral_pose());
    const auto cb = b.conformation(b.neutral_pose());
    for (std::size_t i = 0; i < ca.size(); ++i) {
      EXPECT_EQ(ca[i].x, cb[i].x);  // bitwise: same stream, same geometry
      EXPECT_EQ(ca[i].y, cb[i].y);
      EXPECT_EQ(ca[i].z, cb[i].z);
    }
  }
}

TEST(Library, DifferentSeedsGiveDifferentConformersOfSameChemistry) {
  const Ligand a = library_ligand({1, 64}, 5);
  const Ligand b = library_ligand({2, 64}, 5);
  // Same skeleton: the atom count is decided by the index alone.
  ASSERT_EQ(a.num_atoms(), b.num_atoms());
  const auto ca = a.conformation(a.neutral_pose());
  const auto cb = b.conformation(b.neutral_pose());
  bool any_differs = false;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    any_differs = any_differs || ca[i].distance(cb[i]) > 1e-9;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Library, ChemistryIsExactlyTheProbeSet) {
  for (std::uint64_t idx = 0; idx < 32; ++idx) {
    const Ligand lig = library_ligand({1, 32}, idx);
    for (int i = 0; i < lig.num_atoms(); ++i) {
      const char e = lig.atoms()[static_cast<std::size_t>(i)].element;
      EXPECT_TRUE(e == 'C' || e == 'N' || e == 'O' || e == 'H')
          << "unexpected element " << e << " in library ligand " << idx;
    }
  }
}

TEST(Library, IdsEmbedBothCoordinatesAndSortInIndexOrder) {
  const LibrarySpec spec{255, 1000};
  EXPECT_EQ(library_ligand_id(spec, 0), "LIB-00000000000000ff-00000000");
  EXPECT_EQ(library_ligand_id(spec, 999), "LIB-00000000000000ff-00000999");
  std::string prev = library_ligand_id(spec, 0);
  for (std::uint64_t idx = 1; idx < 50; ++idx) {
    const std::string cur = library_ligand_id(spec, idx);
    EXPECT_LT(prev, cur);  // lexicographic == index order
    prev = cur;
  }
  EXPECT_GT(library_skeleton_count(), std::uint64_t{100000});
}

// --- receptor grid ----------------------------------------------------------

class GridTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    receptor_ = std::make_unique<Structure>(test_receptor());
    grid_ = std::make_unique<ReceptorGrid>(*receptor_, GridParams{});
    rescoring_ = std::make_unique<qdb::ReceptorGrid>(type_receptor(*receptor_));
  }
  static void TearDownTestSuite() {
    rescoring_.reset();
    grid_.reset();
    receptor_.reset();
  }

  static std::unique_ptr<Structure> receptor_;
  static std::unique_ptr<ReceptorGrid> grid_;
  static std::unique_ptr<qdb::ReceptorGrid> rescoring_;
};

std::unique_ptr<Structure> GridTest::receptor_;
std::unique_ptr<ReceptorGrid> GridTest::grid_;
std::unique_ptr<qdb::ReceptorGrid> GridTest::rescoring_;

TEST_F(GridTest, NodeValuesReproduceVinaScoreBitForBit) {
  // The exactness contract: at a grid NODE, the stored channel equals the
  // full intermolecular_energy of a single probe atom there — not "close",
  // EQUAL, because stage-1 and stage-2 must agree wherever both are defined.
  const GridSpec& spec = grid_->spec();
  const char elements[kNumProbes] = {'C', 'N', 'O'};
  int checked = 0;
  for (std::int64_t i = 0; i < spec.nx; i += spec.nx / 3 + 1) {
    for (std::int64_t j = 0; j < spec.ny; j += spec.ny / 3 + 1) {
      for (std::int64_t k = 0; k < spec.nz; k += spec.nz / 3 + 1) {
        const Vec3 p = grid_->node_pos(i, j, k);
        for (int probe = 0; probe < kNumProbes; ++probe) {
          const Ligand lig = single_atom_ligand(elements[probe]);
          const double exact =
              intermolecular_energy(*rescoring_, lig, {p}, VinaWeights{});
          EXPECT_EQ(grid_->node_value(i, j, k, static_cast<Probe>(probe)), exact)
              << "node (" << i << "," << j << "," << k << ") probe " << probe;
          // value_at degenerates to the node value exactly at nodes.
          EXPECT_EQ(grid_->value_at(p, static_cast<Probe>(probe)),
                    grid_->node_value(i, j, k, static_cast<Probe>(probe)));
          ++checked;
        }
      }
    }
  }
  EXPECT_GE(checked, 3 * 27);
}

TEST_F(GridTest, InterpolationStaysWithinTheCellCornerEnvelope) {
  // Trilinear interpolation is a convex combination of the 8 cell corners.
  const GridSpec& spec = grid_->spec();
  const std::int64_t i = spec.nx / 2, j = spec.ny / 2, k = spec.nz / 2;
  const Vec3 a = grid_->node_pos(i, j, k);
  const Vec3 b = grid_->node_pos(i + 1, j + 1, k + 1);
  const Vec3 p{0.5 * (a.x + b.x), 0.25 * a.y + 0.75 * b.y, 0.9 * a.z + 0.1 * b.z};
  double lo = grid_->node_value(i, j, k, Probe::Carbon);
  double hi = lo;
  for (int di = 0; di <= 1; ++di) {
    for (int dj = 0; dj <= 1; ++dj) {
      for (int dk = 0; dk <= 1; ++dk) {
        const double v = grid_->node_value(i + di, j + dj, k + dk, Probe::Carbon);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  }
  const double v = grid_->value_at(p, Probe::Carbon);
  EXPECT_GE(v, lo - 1e-12);
  EXPECT_LE(v, hi + 1e-12);
}

TEST_F(GridTest, OutOfBoxAtomsPayTheDocumentedPenaltyNotAnExtrapolation) {
  const Vec3 far_out = grid_->box_hi() + Vec3{50.0, 0.0, 0.0};
  EXPECT_EQ(grid_->value_at(far_out, Probe::Carbon), ReceptorGrid::kOutOfBoxPenalty);
  EXPECT_EQ(grid_->value_at(grid_->box_lo() - Vec3{0.0, 1e-6, 0.0}, Probe::Oxygen),
            ReceptorGrid::kOutOfBoxPenalty);

  // filter_energy of a single out-of-box heavy atom is exactly one penalty;
  // with zero torsions filter_affinity coincides with it.
  const Ligand lig = single_atom_ligand('C');
  Pose pose = lig.neutral_pose();
  pose.translation = far_out;
  const auto coords = lig.conformation(pose);
  EXPECT_EQ(grid_->filter_energy(lig, coords), ReceptorGrid::kOutOfBoxPenalty);
  EXPECT_EQ(grid_->filter_affinity(lig, coords), ReceptorGrid::kOutOfBoxPenalty);
}

TEST_F(GridTest, SerializationRoundTripsFieldForField) {
  const std::string bytes = grid_->serialize();
  const ReceptorGrid copy = ReceptorGrid::deserialize(bytes);

  const GridSpec& a = grid_->spec();
  const GridSpec& b = copy.spec();
  EXPECT_EQ(a.spacing, b.spacing);
  EXPECT_EQ(a.ox, b.ox);
  EXPECT_EQ(a.oy, b.oy);
  EXPECT_EQ(a.oz, b.oz);
  EXPECT_EQ(a.nx, b.nx);
  EXPECT_EQ(a.ny, b.ny);
  EXPECT_EQ(a.nz, b.nz);
  EXPECT_EQ(grid_->weights().gauss1, copy.weights().gauss1);
  EXPECT_EQ(grid_->weights().gauss2, copy.weights().gauss2);
  EXPECT_EQ(grid_->weights().repulsion, copy.weights().repulsion);
  EXPECT_EQ(grid_->weights().hydrophobic, copy.weights().hydrophobic);
  EXPECT_EQ(grid_->weights().hbond, copy.weights().hbond);
  EXPECT_EQ(grid_->weights().rot_penalty, copy.weights().rot_penalty);
  for (std::int64_t i = 0; i < a.nx; i += a.nx / 4 + 1) {
    for (std::int64_t j = 0; j < a.ny; j += a.ny / 4 + 1) {
      for (std::int64_t k = 0; k < a.nz; k += a.nz / 4 + 1) {
        for (int probe = 0; probe < kNumProbes; ++probe) {
          EXPECT_EQ(grid_->node_value(i, j, k, static_cast<Probe>(probe)),
                    copy.node_value(i, j, k, static_cast<Probe>(probe)));
        }
      }
    }
  }
  // Byte-stability: re-serializing the copy reproduces the exact image, so
  // store ingestion dedups grids across processes.
  EXPECT_EQ(copy.serialize(), bytes);
}

TEST_F(GridTest, DeserializeRefusesCorruptImages) {
  const std::string bytes = grid_->serialize();

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(ReceptorGrid::deserialize(bad_magic), IoError);

  EXPECT_THROW(ReceptorGrid::deserialize(bytes.substr(0, bytes.size() / 2)), IoError);

  std::string flipped = bytes;
  flipped[bytes.size() / 2] = static_cast<char>(flipped[bytes.size() / 2] ^ 0x40);
  EXPECT_THROW(ReceptorGrid::deserialize(flipped), IoError);
}

TEST_F(GridTest, BuildIsIdenticalAcrossThreadCounts) {
  GridParams one;
  one.threads = 1;
  GridParams eight;
  eight.threads = 8;
  EXPECT_EQ(ReceptorGrid(*receptor_, one).serialize(),
            ReceptorGrid(*receptor_, eight).serialize());
}

TEST(GridParamsValidation, RejectsDegenerateLattices) {
  const Structure rec = test_receptor("VKDRS");
  GridParams bad_spacing;
  bad_spacing.spacing = 0.1;
  EXPECT_THROW(ReceptorGrid(rec, bad_spacing), Error);
  GridParams bad_padding;
  bad_padding.padding = 0.1;
  EXPECT_THROW(ReceptorGrid(rec, bad_padding), Error);
}

// --- report + checkpoint ----------------------------------------------------

TEST(Report, PoseJsonRoundTripsBitwise) {
  Pose pose;
  pose.translation = {1.25, -3.5, 0.1 + 0.2};  // 0.30000000000000004: not round
  pose.orientation = Quat::from_axis_angle({0, 0, 1}, 0.7);
  pose.torsions = {0.1, -2.9, 3.0 / 7.0};
  const Pose back = pose_from_json(pose_json(pose));
  EXPECT_EQ(back.translation.x, pose.translation.x);
  EXPECT_EQ(back.translation.y, pose.translation.y);
  EXPECT_EQ(back.translation.z, pose.translation.z);
  EXPECT_EQ(back.orientation.w, pose.orientation.w);
  EXPECT_EQ(back.orientation.x, pose.orientation.x);
  EXPECT_EQ(back.orientation.y, pose.orientation.y);
  EXPECT_EQ(back.orientation.z, pose.orientation.z);
  ASSERT_EQ(back.torsions.size(), pose.torsions.size());
  for (std::size_t i = 0; i < pose.torsions.size(); ++i) {
    EXPECT_EQ(back.torsions[i], pose.torsions[i]);
  }
}

TEST(Report, SerializeRefusesPreemptedReports) {
  ScreenReport report;
  report.preempted = true;
  EXPECT_THROW(serialize_report(report), Error);
}

TEST(Checkpoint, RefusesMismatchedRunsAndRoundTripsMatchingOnes) {
  const std::string path = scratch_path("ckpt.json");
  fs::remove(path);

  std::vector<Stage1Result> results(2);
  results[0].index = 0;
  results[0].id = "LIB-0000000000000001-00000000";
  results[0].best_score = -1.25;
  results[1].index = 1;
  results[1].id = "LIB-0000000000000001-00000001";
  results[1].best_score = 0.5;
  StagePose sp;
  sp.pose.translation = {1, 2, 3};
  sp.score = -1.25;
  results[0].poses.push_back(sp);

  std::vector<Stage1Result> loaded;
  std::uint64_t chunks_done = 0;
  EXPECT_FALSE(load_screen_checkpoint(path, 42, "4jpy", 2, &loaded, &chunks_done));

  save_screen_checkpoint(path, results, 1, 2, 42, "4jpy");
  EXPECT_THROW(load_screen_checkpoint(path, 43, "4jpy", 2, &loaded, &chunks_done),
               IoError);  // options fingerprint mismatch
  EXPECT_THROW(load_screen_checkpoint(path, 42, "1yc4", 2, &loaded, &chunks_done),
               IoError);  // different receptor
  EXPECT_THROW(load_screen_checkpoint(path, 42, "4jpy", 4, &loaded, &chunks_done),
               IoError);  // different chunk layout

  ASSERT_TRUE(load_screen_checkpoint(path, 42, "4jpy", 2, &loaded, &chunks_done));
  EXPECT_EQ(chunks_done, 1u);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].id, results[0].id);
  EXPECT_EQ(loaded[0].best_score, results[0].best_score);  // bitwise via _bits
  ASSERT_EQ(loaded[0].poses.size(), 1u);
  EXPECT_EQ(loaded[0].poses[0].score, sp.score);
  EXPECT_EQ(loaded[0].poses[0].pose.translation.x, 1.0);
  EXPECT_EQ(loaded[1].index, 1u);
  fs::remove(path);
}

// --- funnel -----------------------------------------------------------------

class FunnelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    receptor_ = std::make_unique<Structure>(test_receptor("VKDRS"));
    base_ = small_options();
    prepared_ = std::make_unique<PreparedReceptor>(
        prepare_receptor(*receptor_, base_));
  }
  static void TearDownTestSuite() {
    prepared_.reset();
    receptor_.reset();
  }

  static ScreenOptions small_options() {
    ScreenOptions opt;
    opt.library = {3, 32};
    opt.top_k = 6;
    opt.stage1_keep = 0.25;
    opt.poses_per_ligand = 6;
    opt.poses_rescored = 2;
    opt.chunk_size = 8;
    opt.threads = 1;
    return opt;
  }

  static std::unique_ptr<Structure> receptor_;
  static std::unique_ptr<PreparedReceptor> prepared_;
  static ScreenOptions base_;
};

std::unique_ptr<Structure> FunnelTest::receptor_;
std::unique_ptr<PreparedReceptor> FunnelTest::prepared_;
ScreenOptions FunnelTest::base_;

TEST_F(FunnelTest, RankedHitsAreSortedAndBounded) {
  const ScreenReport report = run_screen(*prepared_, "test", base_);
  EXPECT_FALSE(report.preempted);
  EXPECT_EQ(report.ligands_screened, 32u);
  EXPECT_EQ(report.stage1_survivors, 8u);  // ceil(0.25 * 32)
  EXPECT_EQ(report.chunks_done, report.chunks_total);
  ASSERT_LE(report.hits.size(), 6u);
  ASSERT_GE(report.hits.size(), 1u);
  for (std::size_t i = 1; i < report.hits.size(); ++i) {
    const ScreenHit& a = report.hits[i - 1];
    const ScreenHit& b = report.hits[i];
    EXPECT_TRUE(a.affinity < b.affinity ||
                (a.affinity == b.affinity && a.id < b.id))
        << "hit list not in (affinity, id) order at rank " << i;
  }
  EXPECT_NEAR(report.keep_rate(), 0.25, 1e-12);
}

TEST_F(FunnelTest, ReportBytesAreIdenticalAcrossThreadCounts) {
  ScreenOptions one = base_;
  one.threads = 1;
  ScreenOptions eight = base_;
  eight.threads = 8;
  const std::string a = serialize_report(run_screen(*prepared_, "test", one));
  const std::string b = serialize_report(run_screen(*prepared_, "test", eight));
  EXPECT_EQ(a, b);
}

TEST_F(FunnelTest, ReportRoundTripsThroughBytes) {
  const ScreenReport report = run_screen(*prepared_, "test", base_);
  const ScreenReport back = report_from_bytes(serialize_report(report));
  EXPECT_EQ(back.receptor_tag, report.receptor_tag);
  EXPECT_EQ(back.library.seed, report.library.seed);
  EXPECT_EQ(back.library.size, report.library.size);
  EXPECT_EQ(back.options_fingerprint, report.options_fingerprint);
  EXPECT_EQ(back.stage1_survivors, report.stage1_survivors);
  ASSERT_EQ(back.hits.size(), report.hits.size());
  for (std::size_t i = 0; i < report.hits.size(); ++i) {
    EXPECT_EQ(back.hits[i].id, report.hits[i].id);
    EXPECT_EQ(back.hits[i].index, report.hits[i].index);
    EXPECT_EQ(back.hits[i].affinity, report.hits[i].affinity);      // bitwise
    EXPECT_EQ(back.hits[i].stage1_score, report.hits[i].stage1_score);
    EXPECT_EQ(back.hits[i].pose.translation.x, report.hits[i].pose.translation.x);
  }
  // The round-tripped report re-serializes to the exact same bytes.
  EXPECT_EQ(serialize_report(back), serialize_report(report));
}

TEST_F(FunnelTest, KillAndResumeConvergesToTheUninterruptedBytes) {
  const std::string path = scratch_path("funnel_ckpt.json");
  fs::remove(path);

  const std::string uninterrupted =
      serialize_report(run_screen(*prepared_, "test", base_));

  // Simulate repeated kills: every invocation gets one chunk, then stops.
  ScreenOptions opt = base_;
  opt.checkpoint_path = path;
  opt.stop_after_chunks = 1;
  ScreenReport resumed;
  int invocations = 0;
  for (;; ++invocations) {
    ASSERT_LT(invocations, 16) << "screen never completed";
    resumed = run_screen(*prepared_, "test", opt);
    if (!resumed.preempted) break;
    EXPECT_TRUE(resumed.hits.empty());  // partial funnels publish nothing
    opt.resume = true;
  }
  EXPECT_EQ(invocations, 3);  // 4 chunks: 1 fresh + 2 resumed + final
  EXPECT_EQ(serialize_report(resumed), uninterrupted);

  // A resumed run with different result-shaping options must refuse the
  // checkpoint rather than silently mix two screens.
  ScreenOptions other = opt;
  other.library.seed = 99;
  EXPECT_THROW(run_screen(*prepared_, "test", other), IoError);
  fs::remove(path);
}

TEST_F(FunnelTest, ValidationRejectsNonsenseOptions) {
  ScreenOptions opt = base_;
  opt.stage1_keep = 0.0;
  EXPECT_THROW(run_screen(*prepared_, "test", opt), Error);
  opt = base_;
  opt.top_k = 0;
  EXPECT_THROW(run_screen(*prepared_, "test", opt), Error);
  opt = base_;
  opt.resume = true;  // without a checkpoint path
  EXPECT_THROW(run_screen(*prepared_, "test", opt), Error);
}

TEST(Fingerprint, CoversResultShapingOptionsOnly) {
  ScreenOptions a;
  const std::uint64_t base = screen_options_fingerprint(a);

  ScreenOptions b = a;
  b.threads = 7;
  b.chunk_size = 3;
  b.checkpoint_path = "/tmp/x";
  b.stop_after_chunks = 2;
  EXPECT_EQ(screen_options_fingerprint(b), base)
      << "execution-steering options must not change the result identity";

  ScreenOptions c = a;
  c.library.seed = 2;
  EXPECT_NE(screen_options_fingerprint(c), base);
  ScreenOptions d = a;
  d.stage1_keep = 0.5;
  EXPECT_NE(screen_options_fingerprint(d), base);
  ScreenOptions e = a;
  e.weights.hbond = -0.6;
  EXPECT_NE(screen_options_fingerprint(e), base);
}

// --- /screen endpoint (socket-free, via DatasetServer::handle) --------------

class ScreenApiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = std::make_unique<std::string>(scratch_path("api_suite"));
    fs::remove_all(*dir_);
    const std::string dataset = *dir_ + "/dataset";
    qdb::testing::build_synthetic_dataset(dataset);
    // Give the first entry a real (small) receptor so /screen can dock
    // against it; every other entry keeps the atom-free placeholder.
    const DatasetEntry& e = qdockbank_entries().front();
    pdb_id_ = std::make_unique<std::string>(e.pdb_id);
    write_file_atomic(entry_directory(dataset, e) + "/structure.pdb",
                      to_pdb(test_receptor("VKDRS")));
    store_ = std::make_unique<store::Store>(*dir_ + "/store", 32);
    store_->ingest_dataset(dataset);
  }
  static void TearDownTestSuite() {
    store_.reset();
    fs::remove_all(*dir_);
    pdb_id_.reset();
    dir_.reset();
  }

  static serve::HttpRequest screen_request(const std::string& method = "POST",
                                           const std::string& target = "/screen") {
    serve::HttpRequest req;
    req.method = method;
    req.target = target;
    req.version = "HTTP/1.1";
    serve::split_target(target, &req.path, &req.query);
    return req;
  }

  /// Minimal valid body for a fast screen of the real-receptor entry.
  static Json small_body() {
    Json body = Json::object();
    body.set("pdb_id", *pdb_id_);
    body.set("library_size", std::int64_t{16});
    body.set("top_k", std::int64_t{4});
    body.set("poses_per_ligand", std::int64_t{4});
    body.set("poses_rescored", std::int64_t{2});
    return body;
  }

  static std::unique_ptr<std::string> dir_;
  static std::unique_ptr<std::string> pdb_id_;
  static std::unique_ptr<store::Store> store_;
};

std::unique_ptr<std::string> ScreenApiTest::dir_;
std::unique_ptr<std::string> ScreenApiTest::pdb_id_;
std::unique_ptr<store::Store> ScreenApiTest::store_;

TEST_F(ScreenApiTest, StrictRequestMatrix) {
  serve::ScreenService service(*store_, {.threads = 1});

  // Method and path discipline.
  const serve::HttpResponse get = service.handle(screen_request("GET"), "");
  EXPECT_EQ(get.status, 405);
  bool has_allow = false;
  for (const auto& [k, v] : get.extra_headers) {
    has_allow = has_allow || (k == "Allow" && v == "POST");
  }
  EXPECT_TRUE(has_allow);
  EXPECT_EQ(service.handle(screen_request("POST", "/screen/sub"), "{}").status, 404);
  EXPECT_EQ(service.handle(screen_request("POST", "/screen?x=1"), "{}").status, 400);

  // Body discipline: every rejection is a 400 with a one-line reason.
  const auto post = [&](const std::string& body) {
    return service.handle(screen_request(), body).status;
  };
  EXPECT_EQ(post("not json"), 400);
  EXPECT_EQ(post("[1, 2]"), 400);
  EXPECT_EQ(post("{}"), 400);  // pdb_id is required
  EXPECT_EQ(post("{\"pdb_id\": 7}"), 400);
  EXPECT_EQ(post("{\"pdb_id\": \"x\", \"frobnicate\": 1}"), 400);
  EXPECT_EQ(post("{\"pdb_id\": \"x\", \"top_k\": \"five\"}"), 400);
  EXPECT_EQ(post("{\"pdb_id\": \"x\", \"top_k\": 0}"), 400);
  EXPECT_EQ(post("{\"pdb_id\": \"x\", \"library_size\": 1000000}"), 400);
  EXPECT_EQ(post("{\"pdb_id\": \"x\", \"stage1_keep\": 0.0}"), 400);
  EXPECT_EQ(post("{\"pdb_id\": \"x\", \"stage1_keep\": 1.5}"), 400);
  EXPECT_EQ(post("{\"pdb_id\": \"x\", \"stage1_keep\": true}"), 400);
  EXPECT_EQ(post("{\"pdb_id\": \"x\", \"ingest\": 1}"), 400);

  // Unknown receptor: 404, not 500.
  EXPECT_EQ(post("{\"pdb_id\": \"zzzz\"}"), 404);
}

TEST_F(ScreenApiTest, ScreensAndIngestsOverTheMountedRoute) {
  serve::DatasetServer server(*store_, {});
  serve::ScreenService service(*store_, {.threads = 1});
  serve::attach_screen_api(server, service);

  Json body = small_body();
  body.set("ingest", true);
  const serve::HttpResponse resp =
      server.handle(screen_request(), body.dump());
  ASSERT_EQ(resp.status, 200) << resp.body;
  const Json doc = Json::parse(resp.body);
  EXPECT_EQ(doc.at("receptor").as_string(), *pdb_id_);
  EXPECT_EQ(doc.at("ligands_screened").as_int(), 16);
  EXPECT_FALSE(doc.at("grid_hash").as_string().empty());
  const std::string report_hash = doc.at("report_hash").as_string();
  EXPECT_FALSE(report_hash.empty());
  const JsonArray& hits = doc.at("hits").as_array();
  ASSERT_GE(hits.size(), 1u);
  ASSERT_LE(hits.size(), 4u);
  EXPECT_EQ(hits[0].at("rank").as_int(), 1);

  // Same request again: the grid cache serves it and the ingested report
  // dedups to the same blob — the byte-identity property the CI gate uses.
  const serve::HttpResponse again = server.handle(screen_request(), body.dump());
  ASSERT_EQ(again.status, 200);
  EXPECT_EQ(Json::parse(again.body).at("report_hash").as_string(), report_hash);
  EXPECT_EQ(again.body, resp.body);
}

TEST_F(ScreenApiTest, ResponsesAreByteIdenticalAcrossServiceThreadCounts) {
  serve::ScreenService one(*store_, {.threads = 1});
  serve::ScreenService eight(*store_, {.threads = 8});
  const std::string body = small_body().dump();
  const serve::HttpResponse a = one.handle(screen_request(), body);
  const serve::HttpResponse b = eight.handle(screen_request(), body);
  ASSERT_EQ(a.status, 200) << a.body;
  ASSERT_EQ(b.status, 200) << b.body;
  EXPECT_EQ(a.body, b.body);
}

}  // namespace
}  // namespace qdb::screen
