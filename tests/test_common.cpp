// Tests for src/common: RNG determinism and statistics, JSON round-trips,
// string helpers, and table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/check.h"
#include "common/error.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table.h"

namespace qdb {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, StringSeedingIsStableAndComponentSensitive) {
  Rng a("4jpy", "dock", 0), a2("4jpy", "dock", 0);
  Rng b("4jpy", "dock", 1), c("4jpy", "vqe", 0), d("3d7z", "dock", 0);
  const auto va = a();
  EXPECT_EQ(va, a2());
  EXPECT_NE(va, b());
  EXPECT_NE(va, c());
  EXPECT_NE(va, d());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsUnbiasedOverSmallRange) {
  Rng rng(13);
  int counts[5] = {0, 0, 0, 0, 0};
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(5)];
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(23);
  Rng child = parent.split();
  Rng child2 = parent.split();
  EXPECT_NE(child(), child2());
}

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_double(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-1e-3").as_double(), -1e-3);
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("\"hi\\nthere\"").as_string(), "hi\nthere");
}

TEST(Json, IntStaysIntThroughDump) {
  Json j = Json::object();
  j.set("qubits", 102);
  j.set("energy", -4.25);
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.at("qubits").as_int(), 102);
  EXPECT_DOUBLE_EQ(back.at("energy").as_double(), -4.25);
}

TEST(Json, NestedDocumentRoundTrip) {
  Json doc = Json::object();
  doc.set("id", "4jpy");
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(2.5);
  arr.push_back("x");
  Json inner = Json::object();
  inner.set("ok", true);
  arr.push_back(std::move(inner));
  doc.set("items", std::move(arr));

  const Json back = Json::parse(doc.dump());
  EXPECT_EQ(back.at("id").as_string(), "4jpy");
  const auto& items = back.at("items").as_array();
  ASSERT_EQ(items.size(), 4u);
  EXPECT_EQ(items[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(items[1].as_double(), 2.5);
  EXPECT_EQ(items[2].as_string(), "x");
  EXPECT_TRUE(items[3].at("ok").as_bool());
}

TEST(Json, ObjectKeysKeepInsertionOrder) {
  Json j = Json::object();
  j.set("zebra", 1);
  j.set("apple", 2);
  const std::string s = j.dump(-1);
  EXPECT_LT(s.find("zebra"), s.find("apple"));
}

TEST(Json, SetOverwritesExistingKey) {
  Json j = Json::object();
  j.set("k", 1);
  j.set("k", 2);
  EXPECT_EQ(j.at("k").as_int(), 2);
  EXPECT_EQ(j.as_object().size(), 1u);
}

TEST(Json, ParseErrorsThrow) {
  EXPECT_THROW(Json::parse(""), ParseError);
  EXPECT_THROW(Json::parse("{"), ParseError);
  EXPECT_THROW(Json::parse("[1,]"), ParseError);
  EXPECT_THROW(Json::parse("12 34"), ParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), ParseError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), ParseError);
}

TEST(Json, TypeMismatchThrows) {
  const Json j = Json::parse("{\"a\": 1}");
  EXPECT_THROW(j.as_array(), Error);
  EXPECT_THROW(j.at("missing"), Error);
  EXPECT_THROW(j.at("a").as_string(), Error);
}

TEST(Json, EscapedStringsRoundTrip) {
  Json j = Json::object();
  j.set("s", "a\"b\\c\nd\te");
  EXPECT_EQ(Json::parse(j.dump()).at("s").as_string(), "a\"b\\c\nd\te");
}

TEST(Json, UnicodeEscapeDecodes) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
}

TEST(Json, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/qdb_json_test/doc.json";
  Json j = Json::object();
  j.set("v", 7);
  write_file(path, j.dump());
  EXPECT_EQ(Json::parse(read_file(path)).at("v").as_int(), 7);
}

TEST(Strings, FormatBasics) {
  EXPECT_EQ(format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(to_upper("4jpy"), "4JPY");
  EXPECT_EQ(to_lower("GLY"), "gly");
  EXPECT_TRUE(starts_with("ATOM  123", "ATOM"));
  EXPECT_FALSE(starts_with("AT", "ATOM"));
}

TEST(Table, RendersAlignedColumns) {
  Table t({"PDB ID", "Qubits"});
  t.add_row({"4jpy", "102"});
  t.add_row({"3ckz", "12"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("PDB ID"), std::string::npos);
  EXPECT_NE(s.find("4jpy"), std::string::npos);
  EXPECT_NE(s.find("12"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(ErrorHelpers, RequireThrowsWithMessage) {
  try {
    QDB_REQUIRE(false, "boom");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

}  // namespace
}  // namespace qdb
