// Tests for src/data: registry integrity against the paper's tables, the
// reference-structure provider, and the dataset JSON/directory layout.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "common/error.h"
#include "data/dataset_io.h"
#include "data/reference.h"
#include "data/protein_class.h"
#include "data/registry.h"
#include "geom/kabsch.h"
#include "lattice/solver.h"
#include "structure/pdb.h"

namespace qdb {
namespace {

TEST(Registry, HasAll55Entries) {
  const auto& entries = qdockbank_entries();
  EXPECT_EQ(entries.size(), 55u);
  // Group sizes from the paper: 12 L, 23 M, 20 S.
  EXPECT_EQ(entries_in_group(Group::L).size(), 12u);
  EXPECT_EQ(entries_in_group(Group::M).size(), 23u);
  EXPECT_EQ(entries_in_group(Group::S).size(), 20u);
}

TEST(Registry, PdbIdsAreUnique) {
  std::set<std::string> ids;
  for (const auto& e : qdockbank_entries()) ids.insert(e.pdb_id);
  EXPECT_EQ(ids.size(), 55u);
}

TEST(Registry, SequencesParseAndMatchResidueRanges) {
  for (const auto& e : qdockbank_entries()) {
    EXPECT_NO_THROW(e.parsed_sequence()) << e.pdb_id;
    EXPECT_EQ(e.residue_end - e.residue_start + 1, e.length()) << e.pdb_id;
    EXPECT_GE(e.length(), 5) << e.pdb_id;
    EXPECT_LE(e.length(), 14) << e.pdb_id;
  }
}

TEST(Registry, PublishedValuesAreInternallyConsistent) {
  for (const auto& e : qdockbank_entries()) {
    // Energy range column = highest - lowest (to table rounding).  The
    // paper's own Table 3 row for 4zb8 violates this (968.063 vs 1085.915);
    // we transcribe tables verbatim, so that row is exempt.
    if (std::string_view(e.pdb_id) != "4zb8") {
      EXPECT_NEAR(e.energy_range, e.highest_energy - e.lowest_energy, 0.01) << e.pdb_id;
    }
    // Depth follows the 4q+5 law of the allocation profile.
    EXPECT_EQ(e.depth, 4 * e.qubits + 5) << e.pdb_id;
    EXPECT_GT(e.exec_time_s, 0.0) << e.pdb_id;
  }
}

TEST(Registry, SpotCheckTableValues) {
  const DatasetEntry& jpy = entry_by_id("4jpy");
  EXPECT_STREQ(jpy.sequence, "DYLEAYGKGGVKAK");
  EXPECT_EQ(jpy.qubits, 102);
  EXPECT_NEAR(jpy.lowest_energy, 23332.068, 1e-6);
  EXPECT_EQ(jpy.group(), Group::L);

  const DatasetEntry& ckz = entry_by_id("3ckz");
  EXPECT_EQ(ckz.length(), 5);
  EXPECT_EQ(ckz.qubits, 12);
  EXPECT_EQ(ckz.group(), Group::S);
  EXPECT_NEAR(ckz.exec_time_s, 5763.36, 1e-6);

  const DatasetEntry& qbs = entry_by_id("2qbs");
  EXPECT_EQ(qbs.residue_start, 214);
  EXPECT_EQ(qbs.residue_end, 224);

  EXPECT_THROW(entry_by_id("zzzz"), Error);
}

TEST(Registry, RepeatedSequencesAppearAcrossProteins) {
  // §4.1: EDACQGDSGG and LLDTGADDTV recur in multiple protein contexts.
  int edac = 0, lldt = 0;
  for (const auto& e : qdockbank_entries()) {
    if (std::string_view(e.sequence) == "EDACQGDSGG") ++edac;
    if (std::string_view(e.sequence) == "LLDTGADDTV") ++lldt;
  }
  EXPECT_EQ(edac, 2);  // 2bok, 2vwo
  EXPECT_EQ(lldt, 3);  // 1zsf, 3vf7, 4mc1
}

TEST(Reference, DeterministicAndDockingReady) {
  const DatasetEntry& e = entry_by_id("2bok");
  const Structure a = reference_structure(e);
  const Structure b = reference_structure(e);
  EXPECT_NEAR(ca_rmsd(a, b), 0.0, 1e-12);
  EXPECT_EQ(a.sequence(), "EDACQGDSGG");
  EXPECT_EQ(a.residues.front().seq_number, 188);
  EXPECT_NEAR(a.center().norm(), 0.0, 1e-9);
  EXPECT_NE(a.residues[0].find("HN"), nullptr);  // protonated
}

TEST(Reference, NearButNotOnTheLatticeMinimum) {
  const DatasetEntry& e = entry_by_id("1e2l");
  const FoldingHamiltonian h = entry_hamiltonian(e);
  const SolveResult ground = ExactSolver().solve(h);

  std::vector<Vec3> lattice_trace;
  for (const IVec3& p : walk_positions(ground.turns)) {
    lattice_trace.push_back(lattice_to_cartesian(p));
  }
  const Structure ref = reference_structure(e);
  const double d = rmsd_superposed(ref.ca_positions(), lattice_trace);
  EXPECT_GT(d, 0.1);  // relaxed off-lattice
  EXPECT_LT(d, 2.0);  // but still the same fold
}

TEST(Reference, DifferentEntriesGetDifferentRelaxations) {
  // Same sequence, different PDB context: 2bok vs 2vwo (EDACQGDSGG).
  const Structure a = reference_structure(entry_by_id("2bok"));
  const Structure b = reference_structure(entry_by_id("2vwo"));
  EXPECT_GT(ca_rmsd(a, b), 0.05);
}

TEST(DatasetIo, MetadataJsonHasPublishedAndMeasured) {
  const DatasetEntry& e = entry_by_id("3ckz");
  VqeResult vqe;
  vqe.logical_qubits = 4;
  vqe.allocation = published_eagle_allocation(e.length());
  vqe.lowest_energy = 10.5;
  vqe.highest_energy = 15.0;
  vqe.energy_range = 4.5;
  vqe.modeled_exec_time_s = 5000.0;
  vqe.evaluations = 200;
  vqe.total_shots = 202400;

  const Json j = prediction_metadata_json(e, vqe);
  EXPECT_EQ(j.at("pdb_id").as_string(), "3ckz");
  EXPECT_EQ(j.at("group").as_string(), "S");
  EXPECT_EQ(j.at("measured").at("qubits").as_int(), 12);
  EXPECT_NEAR(j.at("published").at("lowest_energy").as_double(), 10.433, 1e-6);
  EXPECT_EQ(j.at("residues").at("start").as_int(), 149);
  // Round-trips through the parser.
  EXPECT_NO_THROW(Json::parse(j.dump()));
}

TEST(DatasetIo, DockingJsonShape) {
  const DatasetEntry& e = entry_by_id("3ckz");
  DockingResult d;
  d.run_best = {-4.1, -4.0, -3.9};
  d.best_affinity = -4.1;
  d.mean_affinity = -4.0;
  d.rmsd_lb_mean = 1.4;
  d.rmsd_ub_mean = 1.9;
  d.poses.push_back(ScoredPose{{}, -4.1, 0});
  d.poses.push_back(ScoredPose{{}, -4.0, 1});

  const Json j = docking_results_json(e, d, 2.43);
  EXPECT_EQ(j.at("num_runs").as_int(), 3);
  EXPECT_EQ(j.at("run_best_affinity").as_array().size(), 3u);
  EXPECT_EQ(j.at("top_poses").as_array().size(), 2u);
  EXPECT_NEAR(j.at("ca_rmsd_vs_reference").as_double(), 2.43, 1e-12);
}

TEST(DatasetIo, WritesPaperDirectoryLayout) {
  const DatasetEntry& e = entry_by_id("3eax");  // S group, tiny
  const Structure ref = reference_structure(e);
  VqeResult vqe;
  vqe.allocation = published_eagle_allocation(e.length());
  DockingResult dock_result;
  dock_result.run_best = {-3.0};
  dock_result.best_affinity = -3.0;
  dock_result.mean_affinity = -3.0;
  dock_result.poses.push_back(ScoredPose{{}, -3.0, 0});

  const std::string root = testing::TempDir() + "/qdb_dataset_test";
  write_entry_files(root, e, ref, vqe, dock_result, 1.2);

  const std::string dir = root + "/S/3eax";
  EXPECT_EQ(entry_directory(root, e), dir);
  EXPECT_TRUE(std::filesystem::exists(dir + "/structure.pdb"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/metadata.json"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/docking.json"));

  // The written PDB parses back to the same fragment.
  const Structure back = read_pdb_file(dir + "/structure.pdb");
  EXPECT_EQ(back.sequence(), "RYRDV");
}


TEST(ProteinClass, FollowsThePaperListing) {
  EXPECT_EQ(protein_class("1zsf"), ProteinClass::ViralEnzyme);
  EXPECT_EQ(protein_class("4tmk"), ProteinClass::Kinase);
  EXPECT_EQ(protein_class("1ppi"), ProteinClass::MetabolicEnzyme);
  EXPECT_EQ(protein_class("3s0b"), ProteinClass::Receptor);
  EXPECT_EQ(protein_class("1yc4"), ProteinClass::Chaperone);
  EXPECT_EQ(protein_class("5kqx"), ProteinClass::Protease);
  EXPECT_EQ(protein_class("2bfq"), ProteinClass::Miscellaneous);
  EXPECT_EQ(protein_class("5tya"), ProteinClass::Miscellaneous);
}

TEST(ProteinClass, EveryEntryHasExactlyOneClass) {
  std::size_t total = 0;
  for (int c = 0; c <= static_cast<int>(ProteinClass::Miscellaneous); ++c) {
    total += entries_in_class(static_cast<ProteinClass>(c)).size();
  }
  EXPECT_EQ(total, qdockbank_entries().size());
  // The dataset spans several functional classes (the paper's diversity claim).
  EXPECT_GE(entries_in_class(ProteinClass::ViralEnzyme).size(), 4u);
  EXPECT_GE(entries_in_class(ProteinClass::Kinase).size(), 5u);
}

}  // namespace
}  // namespace qdb
