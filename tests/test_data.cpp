// Tests for src/data: registry integrity against the paper's tables, the
// reference-structure provider, and the dataset JSON/directory layout.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <set>

#include "common/error.h"
#include "data/dataset_io.h"
#include "data/reference.h"
#include "data/protein_class.h"
#include "data/registry.h"
#include "geom/kabsch.h"
#include "lattice/solver.h"
#include "structure/pdb.h"

namespace qdb {
namespace {

TEST(Registry, HasAll55Entries) {
  const auto& entries = qdockbank_entries();
  EXPECT_EQ(entries.size(), 55u);
  // Group sizes from the paper: 12 L, 23 M, 20 S.
  EXPECT_EQ(entries_in_group(Group::L).size(), 12u);
  EXPECT_EQ(entries_in_group(Group::M).size(), 23u);
  EXPECT_EQ(entries_in_group(Group::S).size(), 20u);
}

TEST(Registry, PdbIdsAreUnique) {
  std::set<std::string> ids;
  for (const auto& e : qdockbank_entries()) ids.insert(e.pdb_id);
  EXPECT_EQ(ids.size(), 55u);
}

TEST(Registry, SequencesParseAndMatchResidueRanges) {
  for (const auto& e : qdockbank_entries()) {
    EXPECT_NO_THROW(e.parsed_sequence()) << e.pdb_id;
    EXPECT_EQ(e.residue_end - e.residue_start + 1, e.length()) << e.pdb_id;
    EXPECT_GE(e.length(), 5) << e.pdb_id;
    EXPECT_LE(e.length(), 14) << e.pdb_id;
  }
}

TEST(Registry, PublishedValuesAreInternallyConsistent) {
  for (const auto& e : qdockbank_entries()) {
    // Energy range column = highest - lowest (to table rounding).  The
    // paper's own Table 3 row for 4zb8 violates this (968.063 vs 1085.915);
    // we transcribe tables verbatim, so that row is exempt.
    if (std::string_view(e.pdb_id) != "4zb8") {
      EXPECT_NEAR(e.energy_range, e.highest_energy - e.lowest_energy, 0.01) << e.pdb_id;
    }
    // Depth follows the 4q+5 law of the allocation profile.
    EXPECT_EQ(e.depth, 4 * e.qubits + 5) << e.pdb_id;
    EXPECT_GT(e.exec_time_s, 0.0) << e.pdb_id;
  }
}

TEST(Registry, SpotCheckTableValues) {
  const DatasetEntry& jpy = entry_by_id("4jpy");
  EXPECT_STREQ(jpy.sequence, "DYLEAYGKGGVKAK");
  EXPECT_EQ(jpy.qubits, 102);
  EXPECT_NEAR(jpy.lowest_energy, 23332.068, 1e-6);
  EXPECT_EQ(jpy.group(), Group::L);

  const DatasetEntry& ckz = entry_by_id("3ckz");
  EXPECT_EQ(ckz.length(), 5);
  EXPECT_EQ(ckz.qubits, 12);
  EXPECT_EQ(ckz.group(), Group::S);
  EXPECT_NEAR(ckz.exec_time_s, 5763.36, 1e-6);

  const DatasetEntry& qbs = entry_by_id("2qbs");
  EXPECT_EQ(qbs.residue_start, 214);
  EXPECT_EQ(qbs.residue_end, 224);

  EXPECT_THROW(entry_by_id("zzzz"), Error);
}

TEST(Registry, RepeatedSequencesAppearAcrossProteins) {
  // §4.1: EDACQGDSGG and LLDTGADDTV recur in multiple protein contexts.
  int edac = 0, lldt = 0;
  for (const auto& e : qdockbank_entries()) {
    if (std::string_view(e.sequence) == "EDACQGDSGG") ++edac;
    if (std::string_view(e.sequence) == "LLDTGADDTV") ++lldt;
  }
  EXPECT_EQ(edac, 2);  // 2bok, 2vwo
  EXPECT_EQ(lldt, 3);  // 1zsf, 3vf7, 4mc1
}

TEST(Reference, DeterministicAndDockingReady) {
  const DatasetEntry& e = entry_by_id("2bok");
  const Structure a = reference_structure(e);
  const Structure b = reference_structure(e);
  EXPECT_NEAR(ca_rmsd(a, b), 0.0, 1e-12);
  EXPECT_EQ(a.sequence(), "EDACQGDSGG");
  EXPECT_EQ(a.residues.front().seq_number, 188);
  EXPECT_NEAR(a.center().norm(), 0.0, 1e-9);
  EXPECT_NE(a.residues[0].find("HN"), nullptr);  // protonated
}

TEST(Reference, NearButNotOnTheLatticeMinimum) {
  const DatasetEntry& e = entry_by_id("1e2l");
  const FoldingHamiltonian h = entry_hamiltonian(e);
  const SolveResult ground = ExactSolver().solve(h);

  std::vector<Vec3> lattice_trace;
  for (const IVec3& p : walk_positions(ground.turns)) {
    lattice_trace.push_back(lattice_to_cartesian(p));
  }
  const Structure ref = reference_structure(e);
  const double d = rmsd_superposed(ref.ca_positions(), lattice_trace);
  EXPECT_GT(d, 0.1);  // relaxed off-lattice
  EXPECT_LT(d, 2.0);  // but still the same fold
}

TEST(Reference, DifferentEntriesGetDifferentRelaxations) {
  // Same sequence, different PDB context: 2bok vs 2vwo (EDACQGDSGG).
  const Structure a = reference_structure(entry_by_id("2bok"));
  const Structure b = reference_structure(entry_by_id("2vwo"));
  EXPECT_GT(ca_rmsd(a, b), 0.05);
}

TEST(DatasetIo, MetadataJsonHasPublishedAndMeasured) {
  const DatasetEntry& e = entry_by_id("3ckz");
  VqeResult vqe;
  vqe.logical_qubits = 4;
  vqe.allocation = published_eagle_allocation(e.length());
  vqe.lowest_energy = 10.5;
  vqe.highest_energy = 15.0;
  vqe.energy_range = 4.5;
  vqe.modeled_exec_time_s = 5000.0;
  vqe.evaluations = 200;
  vqe.total_shots = 202400;

  const Json j = prediction_metadata_json(e, vqe);
  EXPECT_EQ(j.at("pdb_id").as_string(), "3ckz");
  EXPECT_EQ(j.at("group").as_string(), "S");
  EXPECT_EQ(j.at("measured").at("qubits").as_int(), 12);
  EXPECT_NEAR(j.at("published").at("lowest_energy").as_double(), 10.433, 1e-6);
  EXPECT_EQ(j.at("residues").at("start").as_int(), 149);
  // Round-trips through the parser.
  EXPECT_NO_THROW(Json::parse(j.dump()));
}

TEST(DatasetIo, DockingJsonShape) {
  const DatasetEntry& e = entry_by_id("3ckz");
  DockingResult d;
  d.run_best = {-4.1, -4.0, -3.9};
  d.best_affinity = -4.1;
  d.mean_affinity = -4.0;
  d.rmsd_lb_mean = 1.4;
  d.rmsd_ub_mean = 1.9;
  d.poses.push_back(ScoredPose{{}, -4.1, 0});
  d.poses.push_back(ScoredPose{{}, -4.0, 1});

  const Json j = docking_results_json(e, d, 2.43);
  EXPECT_EQ(j.at("num_runs").as_int(), 3);
  EXPECT_EQ(j.at("run_best_affinity").as_array().size(), 3u);
  EXPECT_EQ(j.at("top_poses").as_array().size(), 2u);
  EXPECT_NEAR(j.at("ca_rmsd_vs_reference").as_double(), 2.43, 1e-12);
}

TEST(DatasetIo, WritesPaperDirectoryLayout) {
  const DatasetEntry& e = entry_by_id("3eax");  // S group, tiny
  const Structure ref = reference_structure(e);
  VqeResult vqe;
  vqe.allocation = published_eagle_allocation(e.length());
  DockingResult dock_result;
  dock_result.run_best = {-3.0};
  dock_result.best_affinity = -3.0;
  dock_result.mean_affinity = -3.0;
  dock_result.poses.push_back(ScoredPose{{}, -3.0, 0});

  const std::string root = testing::TempDir() + "/qdb_dataset_test";
  write_entry_files(root, e, ref, vqe, dock_result, 1.2);

  const std::string dir = root + "/S/3eax";
  EXPECT_EQ(entry_directory(root, e), dir);
  EXPECT_TRUE(std::filesystem::exists(dir + "/structure.pdb"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/metadata.json"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/docking.json"));

  // The written PDB parses back to the same fragment.
  const Structure back = read_pdb_file(dir + "/structure.pdb");
  EXPECT_EQ(back.sequence(), "RYRDV");
}


// --- writer/reader round-trips (ISSUE 4) ------------------------------------
//
// The readers exist so the artifact store can extract query fields at ingest;
// these tests pin writer and reader to one schema, field for field.  Doubles
// pass through the %.10g JSON dump, so compare at 1e-9 relative tolerance.

void expect_close(double a, double b) {
  EXPECT_NEAR(a, b, 1e-9 * std::max({1.0, std::abs(a), std::abs(b)}));
}

TEST(DatasetIo, MetadataRoundTripsFieldForField) {
  const DatasetEntry& e = entry_by_id("4tmk");
  VqeResult vqe;
  vqe.logical_qubits = 22;
  vqe.allocation = published_eagle_allocation(e.length());
  vqe.lowest_energy = 22590.2071234567;  // exercise the %.10g path
  vqe.highest_energy = 29135.42;
  vqe.energy_range = vqe.highest_energy - vqe.lowest_energy;
  vqe.modeled_exec_time_s = 199292.66;
  vqe.evaluations = 137;
  vqe.total_shots = 1234567;

  const Json written = prediction_metadata_json(e, vqe);
  const PredictionMetadata m =
      parse_prediction_metadata(Json::parse(written.dump()));
  EXPECT_EQ(m.pdb_id, "4tmk");
  EXPECT_EQ(m.sequence, e.sequence);
  EXPECT_EQ(m.group, "L");
  EXPECT_EQ(m.protein_class, protein_class_name(protein_class(e.pdb_id)));
  EXPECT_EQ(m.sequence_length, e.length());
  EXPECT_EQ(m.residue_start, e.residue_start);
  EXPECT_EQ(m.residue_end, e.residue_end);
  EXPECT_EQ(m.measured.qubits, vqe.allocation.qubits);
  EXPECT_EQ(m.measured.circuit_depth, vqe.allocation.depth);
  EXPECT_EQ(m.measured.logical_qubits, vqe.logical_qubits);
  EXPECT_EQ(m.measured.evaluations, vqe.evaluations);
  EXPECT_EQ(m.measured.total_shots,
            static_cast<std::int64_t>(vqe.total_shots));
  expect_close(m.measured.lowest_energy, vqe.lowest_energy);
  expect_close(m.measured.highest_energy, vqe.highest_energy);
  expect_close(m.measured.energy_range, vqe.energy_range);
  expect_close(m.measured.exec_time_s, vqe.modeled_exec_time_s);
  EXPECT_EQ(m.published.qubits, e.qubits);
  EXPECT_EQ(m.published.circuit_depth, e.depth);
  expect_close(m.published.lowest_energy, e.lowest_energy);
  expect_close(m.published.highest_energy, e.highest_energy);
  expect_close(m.published.energy_range, e.energy_range);
  expect_close(m.published.exec_time_s, e.exec_time_s);
}

TEST(DatasetIo, DockingRoundTripsFieldForField) {
  const DatasetEntry& e = entry_by_id("2qbs");
  DockingResult d;
  d.run_best = {-5.1234567891, -5.0, -4.875, -4.25};
  d.best_affinity = -5.1234567891;
  d.mean_affinity = -4.8121141973;
  d.rmsd_lb_mean = 1.4142135624;
  d.rmsd_ub_mean = 1.7320508076;
  d.poses.push_back(ScoredPose{{}, -5.1234567891, 2});
  d.poses.push_back(ScoredPose{{}, -5.0, 0});

  const Json written = docking_results_json(e, d, 0.8660254038);
  const DockingSummary s = parse_docking_results(Json::parse(written.dump()));
  EXPECT_EQ(s.pdb_id, "2qbs");
  ASSERT_EQ(s.run_best.size(), d.run_best.size());
  for (std::size_t i = 0; i < d.run_best.size(); ++i) {
    expect_close(s.run_best[i], d.run_best[i]);
  }
  expect_close(s.best_affinity, d.best_affinity);
  expect_close(s.mean_affinity, d.mean_affinity);
  expect_close(s.pose_rmsd_lb_mean, d.rmsd_lb_mean);
  expect_close(s.pose_rmsd_ub_mean, d.rmsd_ub_mean);
  expect_close(s.ca_rmsd_vs_reference, 0.8660254038);
  ASSERT_EQ(s.top_poses.size(), d.poses.size());
  for (std::size_t i = 0; i < d.poses.size(); ++i) {
    expect_close(s.top_poses[i].affinity, d.poses[i].affinity);
    EXPECT_EQ(s.top_poses[i].run, d.poses[i].run);
  }
}

TEST(DatasetIo, ParsersNameTheMissingField) {
  Json doc = Json::object();
  doc.set("pdb_id", "1abc");
  try {
    parse_prediction_metadata(doc);
    FAIL() << "expected ParseError";
  } catch (const ParseError& ex) {
    EXPECT_NE(std::string(ex.what()).find("sequence"), std::string::npos);
  }
  try {
    parse_docking_results(doc);
    FAIL() << "expected ParseError";
  } catch (const ParseError& ex) {
    EXPECT_NE(std::string(ex.what()).find("run_best_affinity"), std::string::npos)
        << ex.what();
  }
}

TEST(DatasetIo, DockingParserRejectsRunCountMismatch) {
  const DatasetEntry& e = entry_by_id("3ckz");
  DockingResult d;
  d.run_best = {-3.5, -3.25};
  d.best_affinity = -3.5;
  d.mean_affinity = -3.375;
  Json doc = docking_results_json(e, d, 1.0);
  doc.set("num_runs", 7);  // contradicts run_best_affinity length
  EXPECT_THROW(parse_docking_results(doc), ParseError);
}

TEST(Registry, EntryByIdIsIndexedAndThrowsOnUnknown) {
  // The hash-indexed lookup must agree with a linear scan for every id and
  // still reject unknown ids (the server's 404 path relies on the throw).
  for (const DatasetEntry& e : qdockbank_entries()) {
    EXPECT_EQ(&entry_by_id(e.pdb_id), &e);
  }
  EXPECT_THROW(entry_by_id("0xyz"), Error);
  EXPECT_THROW(entry_by_id(""), Error);
  EXPECT_THROW(entry_by_id("1yc"), Error);   // prefix of a real id
  EXPECT_THROW(entry_by_id("1yc44"), Error); // extension of a real id
}

TEST(ProteinClass, FollowsThePaperListing) {
  EXPECT_EQ(protein_class("1zsf"), ProteinClass::ViralEnzyme);
  EXPECT_EQ(protein_class("4tmk"), ProteinClass::Kinase);
  EXPECT_EQ(protein_class("1ppi"), ProteinClass::MetabolicEnzyme);
  EXPECT_EQ(protein_class("3s0b"), ProteinClass::Receptor);
  EXPECT_EQ(protein_class("1yc4"), ProteinClass::Chaperone);
  EXPECT_EQ(protein_class("5kqx"), ProteinClass::Protease);
  EXPECT_EQ(protein_class("2bfq"), ProteinClass::Miscellaneous);
  EXPECT_EQ(protein_class("5tya"), ProteinClass::Miscellaneous);
}

TEST(ProteinClass, EveryEntryHasExactlyOneClass) {
  std::size_t total = 0;
  for (int c = 0; c <= static_cast<int>(ProteinClass::Miscellaneous); ++c) {
    total += entries_in_class(static_cast<ProteinClass>(c)).size();
  }
  EXPECT_EQ(total, qdockbank_entries().size());
  // The dataset spans several functional classes (the paper's diversity claim).
  EXPECT_GE(entries_in_class(ProteinClass::ViralEnzyme).size(), 4u);
  EXPECT_GE(entries_in_class(ProteinClass::Kinase).size(), 5u);
}

}  // namespace
}  // namespace qdb
