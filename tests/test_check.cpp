// Tests for the runtime contract framework (common/check.h): level
// selection, message formatting, violation accounting, exception taxonomy —
// and a deliberate break of a *library* invariant (a corrupted shot
// histogram) to prove a violation surfaces with a file:line diagnostic
// pointing into the library, not the test.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/error.h"
#include "quantum/histogram.h"

namespace qdb {
namespace {

using check::Kind;

/// what() of the exception thrown by `fn`, or "" if it did not throw.
template <typename Ex, typename Fn>
std::string thrown_what(Fn&& fn) {
  try {
    fn();
  } catch (const Ex& e) {
    return e.what();
  }
  return "";
}

TEST(CheckLevel, CompiledLevelIsConsistent) {
  EXPECT_GE(check::compiled_level(), 0);
  EXPECT_LE(check::compiled_level(), 2);
  EXPECT_EQ(check::fast_enabled(), check::compiled_level() >= 1);
  EXPECT_EQ(check::audit_enabled(), check::compiled_level() >= 2);
  // Audit implies fast: there is no audit-without-assert configuration.
  if (check::audit_enabled()) {
    EXPECT_TRUE(check::fast_enabled());
  }
}

TEST(CheckMacros, RequireActiveAtEveryLevel) {
  EXPECT_NO_THROW(([&] { QDB_REQUIRE(1 + 1 == 2, "arithmetic"); }()));
  EXPECT_THROW(([&] { QDB_REQUIRE(1 + 1 == 3, "arithmetic"); }()), PreconditionError);
  // PreconditionError is an Error, so existing catch sites keep working.
  EXPECT_THROW(([&] { QDB_REQUIRE(false, "x"); }()), Error);
}

TEST(CheckMacros, FailureMessageCarriesSiteAndValues) {
  const int lhs = 7;
  const std::string what = thrown_what<PreconditionError>(
      [&] { QDB_REQUIRE(lhs == 9, "lhs=" << lhs << " want=" << 9); });
  ASSERT_FALSE(what.empty());
  // "<KIND> failed at <file>:<line>: (<expr>) — <detail>", wrapped by the
  // exception's own prefix.
  EXPECT_NE(what.find("REQUIRE failed at "), std::string::npos) << what;
  EXPECT_NE(what.find("test_check.cpp:"), std::string::npos) << what;
  EXPECT_NE(what.find("(lhs == 9)"), std::string::npos) << what;
  EXPECT_NE(what.find("lhs=7 want=9"), std::string::npos) << what;
}

TEST(CheckMacros, AssertAndEnsureFollowFastLevel) {
  if constexpr (check::fast_enabled()) {
    EXPECT_THROW(([&] { QDB_ASSERT(false, "a"); }()), ContractViolation);
    EXPECT_THROW(([&] { QDB_ENSURE(false, "e"); }()), ContractViolation);
    const std::string what =
        thrown_what<ContractViolation>([] { QDB_ENSURE(false, "post"); });
    EXPECT_NE(what.find("ENSURE failed at "), std::string::npos) << what;
  } else {
    EXPECT_NO_THROW(([&] { QDB_ASSERT(false, "a"); }()));
    EXPECT_NO_THROW(([&] { QDB_ENSURE(false, "e"); }()));
  }
}

TEST(CheckMacros, AuditFollowsAuditLevel) {
  if constexpr (check::audit_enabled()) {
    EXPECT_THROW(([&] { QDB_AUDIT(false, "audit"); }()), ContractViolation);
  } else {
    EXPECT_NO_THROW(([&] { QDB_AUDIT(false, "audit"); }()));
  }
}

TEST(CheckMacros, DisabledTiersNeverEvaluateTheCondition) {
  // Disabled checks must constant-fold away: the condition still
  // type-checks, but side effects must not run.  (At audit level the branch
  // is active, so the side effect legitimately runs and then throws.)
  bool evaluated = false;
  if constexpr (!check::audit_enabled()) {
    QDB_AUDIT((evaluated = true, false), "side effect");
    EXPECT_FALSE(evaluated);
  } else {
    EXPECT_THROW(([&] { QDB_AUDIT((evaluated = true, false), "side effect"); }()),
                 ContractViolation);
    EXPECT_TRUE(evaluated);
  }
}

TEST(CheckAccounting, CountersAndReportTrackViolations) {
  check::reset_violations();
  const std::uint64_t base_total = check::total_violations();
  EXPECT_EQ(base_total, 0u);

  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(([&] { QDB_REQUIRE(i < 0, "i=" << i); }()), PreconditionError);
  }
  EXPECT_EQ(check::total_violations(Kind::Require), 3u);
  EXPECT_GE(check::total_violations(), 3u);

  bool found = false;
  for (const check::SiteReport& rep : check::violation_report()) {
    if (rep.expr == std::string("i < 0")) {
      found = true;
      EXPECT_EQ(rep.kind, Kind::Require);
      EXPECT_EQ(rep.violations, 3u);
      EXPECT_NE(rep.file.find("test_check.cpp"), std::string::npos);
      EXPECT_GT(rep.line, 0);
    }
  }
  EXPECT_TRUE(found) << "violated site missing from violation_report()";

  check::reset_violations();
  EXPECT_EQ(check::total_violations(), 0u);
  // Sites stay registered but report only non-zero counters.
  for (const check::SiteReport& rep : check::violation_report()) {
    EXPECT_GT(rep.violations, 0u);
  }
}

TEST(CheckAccounting, KindTotalsAreDisjoint) {
  if constexpr (!check::fast_enabled()) GTEST_SKIP() << "contracts compiled off";
  check::reset_violations();
  EXPECT_THROW(([&] { QDB_ASSERT(false, ""); }()), ContractViolation);
  EXPECT_THROW(([&] { QDB_ENSURE(false, ""); }()), ContractViolation);
  EXPECT_THROW(([&] { QDB_ENSURE(false, ""); }()), ContractViolation);
  EXPECT_EQ(check::total_violations(Kind::Assert), 1u);
  EXPECT_EQ(check::total_violations(Kind::Ensure), 2u);
  EXPECT_EQ(check::total_violations(Kind::Require), 0u);
  EXPECT_EQ(check::total_violations(), 3u);
  check::reset_violations();
}

// The acceptance scenario: corrupt a real library artifact and watch the
// library's own contract catch it, pointing at the library source line.
TEST(CheckIntegration, CorruptedHistogramTotalIsCaughtWithFileLine) {
  if constexpr (!check::fast_enabled()) GTEST_SKIP() << "contracts compiled off";
  const std::vector<std::uint64_t> shots = {3, 3, 5, 7, 3, 5};
  Histogram h = histogram_from_shots(shots);
  EXPECT_NO_THROW(validate_shot_histogram(h, shots.size()));

  h[5] += 1.0;  // a shot counted twice: total no longer matches
  const std::string what = thrown_what<ContractViolation>(
      [&] { validate_shot_histogram(h, shots.size()); });
  ASSERT_FALSE(what.empty());
  EXPECT_NE(what.find("histogram.cpp:"), std::string::npos) << what;
  EXPECT_NE(what.find("total=7"), std::string::npos) << what;
  EXPECT_NE(what.find("shots=6"), std::string::npos) << what;

  h[5] -= 1.0;
  h[9] = 0.5;  // a non-integer quasi-weight smuggled into a shot histogram
  const std::string what2 = thrown_what<ContractViolation>(
      [&] { validate_shot_histogram(h, shots.size()); });
  ASSERT_FALSE(what2.empty());
  EXPECT_NE(what2.find("histogram.cpp:"), std::string::npos) << what2;
  EXPECT_NE(what2.find("w=0.5"), std::string::npos) << what2;
  check::reset_violations();
}

}  // namespace
}  // namespace qdb
