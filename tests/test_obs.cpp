// Tests for src/obs/ (ISSUE 5): metric registry semantics, Prometheus and
// JSON exposition, trace-span recording across threads, Chrome-trace JSON
// validity (escaping round-trips through qdb::Json), span self-time math,
// the trace/registry agreement invariant, and the structured logger.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/error.h"
#include "common/json.h"
#include "common/parallel.h"
#include "obs/flight.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qdb::obs {
namespace {

// --- registry ---------------------------------------------------------------

TEST(Registry, GetOrCreateReturnsStableHandles) {
  MetricRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.add(2);
  EXPECT_EQ(a.value(), 5u);

  Gauge& g = reg.gauge("x.gauge");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(reg.gauge("x.gauge").value(), 1.5);

  Histogram& h = reg.histogram("x.hist");
  h.record(7);
  EXPECT_EQ(reg.histogram("x.hist").count(), 1u);
}

TEST(Registry, NameBoundToOneTypeForever) {
  MetricRegistry reg;
  reg.counter("telemetry");
  EXPECT_THROW(reg.gauge("telemetry"), Error);
  EXPECT_THROW(reg.histogram("telemetry"), Error);
  reg.gauge("level");
  EXPECT_THROW(reg.counter("level"), Error);
}

TEST(Registry, HistogramBucketsArePowerOfTwo) {
  Histogram h("t");
  h.record(0);    // bucket 0 (le 1)
  h.record(1);    // bucket 0
  h.record(3);    // bucket 1 (le 2? no: bit_width(3)=2 -> b=1, le 2^1=2... 3>2)
  h.record(100);  // bit_width 7 -> bucket 6 (le 64 < 100 <= 127)
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.total(), 104u);
  // bit_width semantics: value v lands in bucket bit_width(v)-1, whose
  // nominal le bound is 2^b — an *under*-estimate by design (same convention
  // as the old serve::LatencyHistogram, kept for continuity).
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(6), 1u);
  EXPECT_EQ(Histogram::le_bound(3), 8u);
  // A huge value lands in +Inf.
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.bucket_count(Histogram::kBuckets), 1u);
}

TEST(Registry, SnapshotIsDeterministicallySorted) {
  MetricRegistry reg;
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(2);
  reg.gauge("mid").set(3.0);
  reg.histogram("beta.h").record(4);
  reg.add_collector([](Snapshot& s) {
    s.labeled.push_back({"fam", "site", "zz", 1});
    s.labeled.push_back({"fam", "site", "aa", 2});
  });
  const Snapshot s1 = reg.snapshot();
  const Snapshot s2 = reg.snapshot();
  ASSERT_EQ(s1.counters.size(), 2u);
  EXPECT_EQ(s1.counters[0].first, "alpha");  // std::map iterates sorted
  EXPECT_EQ(s1.counters[1].first, "zeta");
  ASSERT_EQ(s1.labeled.size(), 2u);
  EXPECT_EQ(s1.labeled[0].label_value, "aa");  // sorted post-collection
  // Two quiescent snapshots are identical.
  EXPECT_EQ(s1.counters, s2.counters);
  EXPECT_EQ(s1.gauges, s2.gauges);
  ASSERT_EQ(s2.histograms.size(), 1u);
  EXPECT_EQ(s1.histograms[0].buckets, s2.histograms[0].buckets);
}

TEST(Registry, ConcurrentRecordingIsExactAtQuiescence) {
  MetricRegistry reg;
  Counter& c = reg.counter("hits");
  Histogram& h = reg.histogram("lat");
  parallel_for_threads(8, 8, [&](std::int64_t t) {
    for (int i = 0; i < 1000; ++i) {
      c.add();
      h.record(static_cast<std::uint64_t>(t));
    }
  });
  EXPECT_EQ(c.value(), 8000u);
  EXPECT_EQ(h.count(), 8000u);
}

TEST(Registry, ResetZeroesButKeepsRegistrations) {
  MetricRegistry reg;
  Counter& c = reg.counter("n");
  c.add(9);
  reg.histogram("h").record(2);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.histogram("h").count(), 0u);
  EXPECT_EQ(&reg.counter("n"), &c);
}

// --- exposition -------------------------------------------------------------

TEST(Exposition, PrometheusGoldenText) {
  MetricRegistry reg;
  reg.counter("vqe.evals").add(3);
  reg.gauge("queue.depth").set(2.0);
  Histogram& h = reg.histogram("span.run");
  h.record(1);
  h.record(3);
  reg.add_collector([](Snapshot& s) {
    s.labeled.push_back({"fault.fires", "site", "a\"b\\c\nd", 7});
  });
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE qdb_vqe_evals counter\nqdb_vqe_evals 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE qdb_queue_depth gauge\nqdb_queue_depth 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE qdb_span_run histogram\n"), std::string::npos);
  EXPECT_NE(text.find("qdb_span_run_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("qdb_span_run_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("qdb_span_run_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("qdb_span_run_sum 4\n"), std::string::npos);
  EXPECT_NE(text.find("qdb_span_run_count 2\n"), std::string::npos);
  // Label values escape backslash, quote, newline.
  EXPECT_NE(text.find("qdb_fault_fires{site=\"a\\\"b\\\\c\\nd\"} 7\n"),
            std::string::npos);
  // Every family has exactly one TYPE line (no duplicates).
  std::size_t types = 0;
  for (std::size_t p = text.find("# TYPE"); p != std::string::npos;
       p = text.find("# TYPE", p + 1)) {
    ++types;
  }
  EXPECT_EQ(types, 4u);
}

TEST(Exposition, PrometheusNameSanitisation) {
  EXPECT_EQ(prometheus_name("vqe.stage1.evals"), "qdb_vqe_stage1_evals");
  EXPECT_EQ(prometheus_name("a-b c"), "qdb_a_b_c");
  EXPECT_EQ(prometheus_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(Exposition, RegistryJsonShape) {
  MetricRegistry reg;
  reg.counter("c").add(1);
  reg.gauge("g").set(0.5);
  reg.histogram("h").record(2);
  reg.add_collector([](Snapshot& s) {
    s.labeled.push_back({"fam", "site", "x", 3});
  });
  const Json j = Json::parse(reg.to_json().dump());  // round-trip
  EXPECT_EQ(j.at("counters").at("c").as_int(), 1);
  EXPECT_DOUBLE_EQ(j.at("gauges").at("g").as_double(), 0.5);
  EXPECT_EQ(j.at("histograms").at("h").at("count").as_int(), 1);
  EXPECT_EQ(j.at("histograms").at("h").at("total").as_int(), 2);
  EXPECT_EQ(j.at("collected").at("fam").at("x").as_int(), 3);
}

// --- tracing ----------------------------------------------------------------

/// Serialise trace tests: they install the process-wide session.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (TraceSession::current() != nullptr) TraceSession::current()->stop();
  }
};

TEST_F(TraceTest, SpansRecordOnlyWhileSessionActive) {
  { Span s("trace.before"); }  // no session: registry only, no event
  TraceSession session;
  session.start();
  EXPECT_TRUE(session.active());
  EXPECT_EQ(TraceSession::current(), &session);
  {
    Span outer("trace.outer");
    outer.set_attr("k", "v");
    { QDB_SPAN("trace.inner"); }
  }
  session.stop();
  EXPECT_FALSE(session.active());
  ASSERT_EQ(session.events().size(), 2u);
  // Sorted by (tid, ts, depth): outer starts first.
  EXPECT_EQ(session.events()[0].name, "trace.outer");
  EXPECT_EQ(session.events()[0].depth, 0);
  ASSERT_EQ(session.events()[0].args.size(), 1u);
  EXPECT_EQ(session.events()[0].args[0].first, "k");
  EXPECT_EQ(session.events()[1].name, "trace.inner");
  EXPECT_EQ(session.events()[1].depth, 1);
  { Span s("trace.after"); }  // after stop: ignored
  EXPECT_EQ(session.events().size(), 2u);
}

TEST_F(TraceTest, OnlyOneSessionAtATimeAndNoRestart) {
  TraceSession a;
  a.start();
  TraceSession b;
  EXPECT_THROW(b.start(), Error);
  a.stop();
  EXPECT_THROW(a.start(), Error);  // sessions are single-use
  b.start();                       // a stopped session frees the slot
  b.stop();
}

TEST_F(TraceTest, EightThreadsRecordIntoOneSession) {
  TraceSession session;
  session.start();
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 50;
  parallel_for_threads(kThreads, kThreads, [&](std::int64_t t) {
    for (int i = 0; i < kSpansPerThread; ++i) {
      Span s("trace.worker");
      s.set_attr("t", std::to_string(t));
      { QDB_SPAN("trace.worker.child"); }
    }
  });
  session.stop();
  EXPECT_EQ(session.events().size(),
            static_cast<std::size_t>(2 * kThreads * kSpansPerThread));
  // Events are grouped by tid and time-ordered within each tid.
  int last_tid = 0;
  std::uint64_t last_ts = 0;
  for (const TraceEvent& e : session.events()) {
    ASSERT_GE(e.tid, last_tid);
    if (e.tid != last_tid) last_ts = 0;
    EXPECT_GE(e.ts_us, last_ts);
    last_tid = e.tid;
    last_ts = e.ts_us;
  }
  const auto summary = session.summary();
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[0].name, "trace.worker");
  EXPECT_EQ(summary[0].count, static_cast<std::uint64_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(summary[1].name, "trace.worker.child");

  // The acceptance invariant: at quiescence the session's per-span counts
  // agree exactly with the registry's span.<name> histogram counts recorded
  // during the session (counted via before/after deltas so other tests'
  // spans don't interfere — the registry is process-global).
  const std::uint64_t registry_workers =
      MetricRegistry::global().histogram("span.trace.worker").count();
  EXPECT_GE(registry_workers, summary[0].count);
}

TEST_F(TraceTest, ThreadPoolSurvivesSessionTurnover) {
  // OpenMP reuses pooled threads across parallel regions; the generation
  // check must rebind each thread's cached buffer to the *new* session.
  for (int round = 0; round < 3; ++round) {
    TraceSession session;
    session.start();
    parallel_for_threads(4, 4, [&](std::int64_t) { QDB_SPAN("trace.round"); });
    session.stop();
    EXPECT_EQ(session.events().size(), 4u) << "round " << round;
  }
}

TEST_F(TraceTest, ChromeJsonIsValidAndEscaped) {
  TraceSession session;
  session.start();
  {
    Span s("trace.escape");
    s.set_attr("quote\"backslash\\", "ctrl\x01\ttab");
    s.set_attr("utf8", "prot\xc3\xa9ine \xe2\x9c\x93");
  }
  session.stop();
  const std::string dumped = session.to_chrome_json().dump();
  const Json parsed = Json::parse(dumped);  // must survive a round-trip
  EXPECT_EQ(parsed.at("displayTimeUnit").as_string(), "ms");
  const JsonArray& events = parsed.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 1u);
  const Json& ev = events[0];
  EXPECT_EQ(ev.at("name").as_string(), "trace.escape");
  EXPECT_EQ(ev.at("ph").as_string(), "X");
  EXPECT_EQ(ev.at("cat").as_string(), "qdb");
  EXPECT_EQ(ev.at("pid").as_int(), 1);
  EXPECT_GE(ev.at("dur").as_int(), 0);
  const Json& args = ev.at("args");
  EXPECT_EQ(args.at("quote\"backslash\\").as_string(), "ctrl\x01\ttab");
  // UTF-8 passes through byte-exact.
  EXPECT_EQ(args.at("utf8").as_string(), "prot\xc3\xa9ine \xe2\x9c\x93");
}

TEST_F(TraceTest, SummarySelfTimeSubtractsDirectChildren) {
  // Hand-built events exercise the ancestor-stack attribution without
  // depending on real clock durations.
  TraceSession session;
  session.start();
  {
    Span outer("trace.self.outer");
    {
      Span mid("trace.self.mid");
      { QDB_SPAN("trace.self.leaf"); }
    }
  }
  session.stop();
  const auto rows = session.summary();
  ASSERT_EQ(rows.size(), 3u);  // sorted by name: leaf < mid < outer
  const SpanSummary& leaf = rows[0];
  const SpanSummary& mid = rows[1];
  const SpanSummary& outer = rows[2];
  EXPECT_EQ(leaf.name, "trace.self.leaf");
  EXPECT_EQ(leaf.self_us, leaf.total_us);  // no children
  // A parent's self time excludes its direct child but never underflows.
  EXPECT_LE(mid.self_us, mid.total_us);
  EXPECT_LE(outer.self_us, outer.total_us);
  EXPECT_GE(mid.total_us, leaf.total_us);
  EXPECT_GE(outer.total_us, mid.total_us);
}

TEST_F(TraceTest, SummaryTableRendersEverySpan) {
  TraceSession session;
  session.start();
  { QDB_SPAN("trace.table"); }
  session.stop();
  const std::string table = session.summary_table();
  EXPECT_NE(table.find("trace.table"), std::string::npos);
  EXPECT_NE(table.find("Span"), std::string::npos);
  EXPECT_NE(table.find("Self(ms)"), std::string::npos);
}

// --- logger -----------------------------------------------------------------

/// Capture log lines; restores the stderr sink and Warn level on exit.
class LogCapture {
 public:
  LogCapture() {
    set_log_sink([this](std::string_view line) { lines_.emplace_back(line); });
  }
  ~LogCapture() {
    set_log_sink(nullptr);
    set_log_level(LogLevel::Warn);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

TEST(Log, LevelsGateEmission) {
  LogCapture cap;
  set_log_level(LogLevel::Warn);
  log_warn("a");
  log_info("b");
  log_debug("c");
  ASSERT_EQ(cap.lines().size(), 1u);
  set_log_level(LogLevel::Debug);
  log_info("d");
  log_debug("e");
  EXPECT_EQ(cap.lines().size(), 3u);
  set_log_level(LogLevel::Off);
  log_warn("f");
  EXPECT_EQ(cap.lines().size(), 3u);
}

TEST(Log, ParseLevelIsCaseInsensitiveWithWarnFallback) {
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("verbose"), LogLevel::Warn);  // unknown -> default
  EXPECT_EQ(parse_log_level(""), LogLevel::Warn);
}

TEST(Log, KeyValueFormatAndEscaping) {
  LogCapture cap;
  set_log_level(LogLevel::Info);
  log_info("test.event")
      .kv("plain", "simple")
      .kv("spaced", "two words")
      .kv("quoted", "say \"hi\"")
      .kv("count", 42)
      .kv("ratio", 0.5)
      .kv("flag", true)
      .kv("ctrl", std::string_view("a\nb\x02"));
  ASSERT_EQ(cap.lines().size(), 1u);
  const std::string& line = cap.lines()[0];
  EXPECT_EQ(line.find('\n'), std::string::npos);  // single line, always
  EXPECT_NE(line.find("ts="), std::string::npos);
  EXPECT_NE(line.find(" level=info"), std::string::npos);
  EXPECT_NE(line.find(" event=test.event"), std::string::npos);
  EXPECT_NE(line.find(" plain=simple"), std::string::npos);
  EXPECT_NE(line.find(" spaced=\"two words\""), std::string::npos);
  EXPECT_NE(line.find(" quoted=\"say \\\"hi\\\"\""), std::string::npos);
  EXPECT_NE(line.find(" count=42"), std::string::npos);
  EXPECT_NE(line.find(" ratio=0.5"), std::string::npos);
  EXPECT_NE(line.find(" flag=true"), std::string::npos);
  EXPECT_NE(line.find(" ctrl=\"a\\nb\\x02\""), std::string::npos);
}

TEST(Log, EscapeValueRules) {
  EXPECT_EQ(log_escape_value("bare"), "bare");
  EXPECT_EQ(log_escape_value(""), "\"\"");
  EXPECT_EQ(log_escape_value("a=b"), "\"a=b\"");
  EXPECT_EQ(log_escape_value("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(log_escape_value("tab\there"), "\"tab\\there\"");
}

TEST(Log, DisabledEventsCostNoFormatting) {
  LogCapture cap;
  set_log_level(LogLevel::Off);
  // A disabled builder chain must be inert (and crash-free).
  log_debug("nope").kv("k", "v").kv("n", 1);
  EXPECT_TRUE(cap.lines().empty());
}

TEST(Log, ConcurrentRecordsNeverInterleave) {
  LogCapture cap;
  set_log_level(LogLevel::Info);
  parallel_for_threads(8, 8, [&](std::int64_t t) {
    for (int i = 0; i < 50; ++i) {
      log_info("log.thread").kv("t", t).kv("i", i);
    }
  });
  // Sink is mutex-serialised: exactly one line per record, each well-formed.
  EXPECT_EQ(cap.lines().size(), 400u);
  for (const std::string& line : cap.lines()) {
    EXPECT_EQ(line.rfind("ts=", 0), 0u) << line;
    EXPECT_NE(line.find(" event=log.thread"), std::string::npos) << line;
  }
}

// --- distributed trace context (ISSUE 10) -----------------------------------

TEST(TraceContext, RootDerivationIsDeterministicAndSeedSensitive) {
  const TraceContext a = derive_root_context(42);
  const TraceContext b = derive_root_context(42);
  const TraceContext c = derive_root_context(43);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.span_id, 0u);  // a root is a context, not a span
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(TraceContext, SpanIdDerivationSeparatesNameBranchSiblingAndParent) {
  const TraceContext root = derive_root_context(7);
  const std::uint64_t base = derive_span_id(root, "job", 1, 0);
  EXPECT_NE(base, 0u);
  EXPECT_EQ(base, derive_span_id(root, "job", 1, 0));
  EXPECT_NE(base, derive_span_id(root, "lease", 1, 0));
  EXPECT_NE(base, derive_span_id(root, "job", 2, 0));
  EXPECT_NE(base, derive_span_id(root, "job", 1, 1));
  TraceContext deeper = root;
  deeper.span_id = base;
  EXPECT_NE(base, derive_span_id(deeper, "job", 1, 0));
}

TEST(TraceContext, TraceparentRoundTripAndStrictRejects) {
  const TraceContext ctx{0x0123456789abcdefULL, 0xfedcba9876543210ULL,
                         0x00000000deadbeefULL};
  const std::string header = format_traceparent(ctx);
  EXPECT_EQ(header,
            "00-0123456789abcdeffedcba9876543210-00000000deadbeef-01");
  TraceContext parsed;
  ASSERT_TRUE(parse_traceparent(header, &parsed));
  EXPECT_EQ(parsed, ctx);

  TraceContext sink;
  EXPECT_FALSE(parse_traceparent("", &sink));
  EXPECT_FALSE(parse_traceparent(header.substr(0, 54), &sink));
  EXPECT_FALSE(parse_traceparent(header + "0", &sink));
  std::string upper = header;
  std::replace(upper.begin(), upper.end(), 'a', 'A');
  EXPECT_FALSE(parse_traceparent(upper, &sink));  // lowercase hex only
  std::string version = header;
  version[1] = '1';
  EXPECT_FALSE(parse_traceparent(version, &sink));  // only version 00
  std::string dashes = header;
  dashes[2] = '_';
  EXPECT_FALSE(parse_traceparent(dashes, &sink));
  std::string nonhex = header;
  nonhex[10] = 'g';
  EXPECT_FALSE(parse_traceparent(nonhex, &sink));
  EXPECT_FALSE(parse_traceparent(
      "00-00000000000000000000000000000000-00000000deadbeef-01", &sink));
  EXPECT_FALSE(parse_traceparent(
      "00-0123456789abcdeffedcba9876543210-0000000000000000-01", &sink));
}

TEST(TraceContext, FormatRequiresASpanToReferTo) {
  // W3C forbids a zero parent-id on the wire, so a bare root context (no
  // span open) is not injectable — callers must check span_id first.
  EXPECT_THROW(format_traceparent(TraceContext{}), Error);
  EXPECT_THROW(format_traceparent(TraceContext{1, 2, 0}), Error);
}

TEST_F(TraceTest, SpansWithoutAnyContextCarryNoIds) {
  TraceSession session;
  session.start();
  { Span s("ctx.naked"); }
  session.stop();
  ASSERT_EQ(session.events().size(), 1u);
  EXPECT_EQ(session.events()[0].span_id, 0u);
  EXPECT_EQ(session.events()[0].trace_hi | session.events()[0].trace_lo, 0u);
  const Json& ev = session.to_chrome_json().at("traceEvents").as_array()[0];
  EXPECT_FALSE(ev.contains("trace"));
  EXPECT_FALSE(ev.contains("span"));
  EXPECT_FALSE(ev.contains("parent"));
}

TEST_F(TraceTest, ScopedContextParentsSpansReproducibly) {
  TraceSession session;
  session.start();
  const TraceContext remote{0x11d0c4b17e57aaaaULL, 0x5eedf00dcafef00dULL,
                            0x1234123412341234ULL};
  std::uint64_t outer_id = 0;
  std::uint64_t inner_a = 0;
  std::uint64_t inner_b = 0;
  {
    const ScopedTraceContext scope(remote, 9);
    Span outer("ctx.outer");
    EXPECT_EQ(outer.context().trace_hi, remote.trace_hi);
    EXPECT_EQ(outer.context().trace_lo, remote.trace_lo);
    outer_id = outer.context().span_id;
    { Span inner("ctx.inner"); inner_a = inner.context().span_id; }
    { Span inner("ctx.inner"); inner_b = inner.context().span_id; }
  }
  EXPECT_NE(outer_id, 0u);
  // The sibling counter separates same-name sequential children...
  EXPECT_NE(inner_a, inner_b);
  {
    // ...and a fresh scope with the same (context, branch) replays the same
    // ids: derivation, not randomness.
    const ScopedTraceContext scope(remote, 9);
    Span outer("ctx.outer");
    EXPECT_EQ(outer.context().span_id, outer_id);
  }
  session.stop();
  for (const TraceEvent& ev : session.events()) {
    if (ev.name == "ctx.outer") {
      EXPECT_EQ(ev.parent_id, remote.span_id);
    } else {
      EXPECT_EQ(ev.parent_id, outer_id);  // inner spans parent to outer
    }
  }
}

TEST_F(TraceTest, InvalidScopedContextInstallsNothing) {
  const ScopedTraceContext scope(TraceContext{});
  EXPECT_FALSE(current_trace_context().valid());
}

TEST_F(TraceTest, ChromeJsonCarriesProcessIdentityAndIds) {
  TraceSession session;
  session.set_process(7, "qdb test");
  session.start();
  const TraceContext remote{0xaULL, 0xbULL, 0xcULL};
  {
    const ScopedTraceContext scope(remote, 1);
    Span s("ctx.export");
  }
  session.stop();
  const Json doc = session.to_chrome_json();
  EXPECT_EQ(doc.at("process").at("pid").as_int(), 7);
  EXPECT_EQ(doc.at("process").at("name").as_string(), "qdb test");
  const Json& ev = doc.at("traceEvents").as_array()[0];
  EXPECT_EQ(ev.at("pid").as_int(), 7);
  EXPECT_EQ(ev.at("trace").as_string(), trace_id_hex(remote));
  EXPECT_EQ(ev.at("span").as_string().size(), 16u);
  EXPECT_EQ(ev.at("parent").as_string(), span_id_hex(remote.span_id));
}

// --- flight recorder (ISSUE 10) ---------------------------------------------

TEST(Flight, RecordsEverySpanAndWrapsAtCapacity) {
  const std::int64_t before = flight_snapshot_json(0).at("recorded").as_int();
  for (int i = 0; i < 300; ++i) {
    Span s("flight.spin");  // no session needed: the ring is always on
  }
  const Json snap = flight_snapshot_json(0);
  EXPECT_EQ(snap.at("capacity").as_int(),
            static_cast<std::int64_t>(kFlightCapacity));
  EXPECT_GE(snap.at("recorded").as_int(), before + 300);
  const auto& recs = snap.at("records").as_array();
  EXPECT_EQ(recs.size(), kFlightCapacity);  // 300 > 256: the ring wrapped
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LT(recs[i - 1].at("seq").as_int(), recs[i].at("seq").as_int());
  }
  // Byte-stable schema: the fixed key prefix, in order, on every record.
  for (const Json& rec : recs) {
    const auto& fields = rec.as_object();
    ASSERT_GE(fields.size(), 5u);
    EXPECT_EQ(fields[0].first, "seq");
    EXPECT_EQ(fields[1].first, "kind");
    EXPECT_EQ(fields[2].first, "name");
    EXPECT_EQ(fields[3].first, "ts_us");
    EXPECT_EQ(fields[4].first, "dur_us");
  }
  EXPECT_EQ(recs.back().at("kind").as_string(), "span");
  EXPECT_EQ(recs.back().at("name").as_string(), "flight.spin");
}

TEST(Flight, SnapshotKeepsOnlyTheLastN) {
  for (int i = 0; i < 10; ++i) {
    Span s("flight.lastn");
  }
  const Json snap = flight_snapshot_json(5);
  const auto& recs = snap.at("records").as_array();
  ASSERT_EQ(recs.size(), 5u);
  EXPECT_EQ(recs.back().at("name").as_string(), "flight.lastn");
}

TEST(Flight, EnabledLogEventsLandInTheRing) {
  set_log_sink([](std::string_view) {});
  set_log_level(LogLevel::Info);
  log_info("flight.logged").kv("k", 1);
  set_log_sink(nullptr);
  set_log_level(LogLevel::Warn);
  const Json snap = flight_snapshot_json(1);
  const auto& recs = snap.at("records").as_array();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].at("kind").as_string(), "log");
  EXPECT_EQ(recs[0].at("name").as_string(), "flight.logged");
}

TEST(Flight, ConcurrentWritersAndSnapshotsStayConsistent) {
  // TSan coverage for the seqlock: writers race the ring while a reader
  // snapshots continuously; every surfaced record must be well-formed.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const Json snap = flight_snapshot_json(0);
      for (const Json& rec : snap.at("records").as_array()) {
        EXPECT_LE(rec.at("name").as_string().size(), kFlightNameBytes);
        EXPECT_FALSE(rec.at("kind").as_string().empty());
      }
    }
  });
  parallel_for_threads(4, 4, [&](std::int64_t t) {
    const std::string name = "flight.concurrent." + std::to_string(t);
    for (int i = 0; i < 2000; ++i) {
      flight_record_span(name, static_cast<std::uint64_t>(i), 1, 2, 3, 0);
    }
  });
  stop.store(true, std::memory_order_relaxed);
  reader.join();
}

TEST(Flight, CrashDumpWrittenOnContractViolation) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "qdb_flight_dump_test";
  fs::create_directories(dir);
  const std::string path = (dir / "flight.json").string();
  std::error_code ec;
  fs::remove(path, ec);

  arm_flight_crash_dump(path);
  { Span s("flight.before_crash"); }
  EXPECT_THROW(
      ([&] { QDB_REQUIRE(false, "flight crash dump test"); }()),
      PreconditionError);
  check::set_failure_hook(nullptr);  // disarm before any other test fails

  const Json doc = Json::parse(read_file(path));
  EXPECT_NE(doc.at("failure").as_string().find("flight crash dump test"),
            std::string::npos);
  bool found = false;
  for (const Json& rec : doc.at("records").as_array()) {
    found = found || rec.at("name").as_string() == "flight.before_crash";
  }
  EXPECT_TRUE(found);
}

// --- log / trace join (ISSUE 10) --------------------------------------------

TEST(Log, LinesJoinTheCurrentTraceContext) {
  LogCapture cap;
  set_log_level(LogLevel::Info);
  log_info("log.noctx");
  const TraceContext ctx{0xabcULL, 0xdefULL, 0x123ULL};
  {
    const ScopedTraceContext scope(ctx, 0);
    log_info("log.withctx").kv("k", "v");
  }
  ASSERT_EQ(cap.lines().size(), 2u);
  EXPECT_EQ(cap.lines()[0].find(" trace="), std::string::npos);
  EXPECT_NE(cap.lines()[1].find(" event=log.withctx trace=" +
                                trace_id_hex(ctx) + " k=v"),
            std::string::npos)
      << cap.lines()[1];
}

// --- process root (LAST in this file: set_process_root_context is sticky) ---

TEST(TraceContextRoot, ProcessRootIdentifiesSpansOnEveryThread) {
  // Installing the process root context is irreversible for the process
  // (worker threads cache a base frame derived from it), so this suite runs
  // last: earlier tests assert the no-context behaviour.
  set_process_root_context(derive_root_context(99));
  const TraceContext root = derive_root_context(99);
  TraceSession session;
  session.start();
  std::vector<std::uint64_t> span_ids(4, 0);
  std::vector<std::uint64_t> trace_his(4, 0);
  parallel_for_threads(4, 4, [&](std::int64_t t) {
    Span s("ctx.thread");
    span_ids[static_cast<std::size_t>(t)] = s.context().span_id;
    trace_his[static_cast<std::size_t>(t)] = s.context().trace_hi;
  });
  session.stop();
  const std::set<std::uint64_t> unique(span_ids.begin(), span_ids.end());
  EXPECT_EQ(unique.size(), 4u);  // distinct ids even for same-name spans
  EXPECT_EQ(unique.count(0), 0u);
  for (const std::uint64_t hi : trace_his) {
    EXPECT_EQ(hi, root.trace_hi);  // one trace per process
  }
}

}  // namespace
}  // namespace qdb::obs
