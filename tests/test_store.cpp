// Tests for the content-addressed artifact store (ISSUE 4): content hashing,
// the binary index round-trip and its corruption detection, ingest + dedup
// idempotence, the LRU blob cache, and fault-injected ingest atomicity.
#include <gtest/gtest.h>
#include <unistd.h>  // getpid for per-process scratch directories

#include <filesystem>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "common/json.h"
#include "data/registry.h"
#include "dataset_fixture.h"
#include "store/cache.h"
#include "store/store.h"

namespace qdb::store {
namespace {

namespace fs = std::filesystem;

/// Per-test scratch directory, removed on teardown.
class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = (fs::temp_directory_path() /
            ("qdb_store_" + std::string(info->name()) + "_" +
             std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    FaultInjector::instance().clear();
    fs::remove_all(dir_);
  }

  std::string path(const std::string& leaf) const { return dir_ + "/" + leaf; }

  /// Dataset root with every registry entry, built once per test on demand.
  const std::string& dataset_root() {
    if (dataset_root_.empty()) {
      dataset_root_ = path("dataset");
      qdb::testing::build_synthetic_dataset(dataset_root_);
    }
    return dataset_root_;
  }

  std::string dir_;
  std::string dataset_root_;
};

std::size_t count_blobs(const std::string& store_root) {
  std::size_t n = 0;
  const fs::path blobs = fs::path(store_root) / "blobs";
  if (!fs::exists(blobs)) return 0;
  for (const auto& p : fs::recursive_directory_iterator(blobs)) {
    if (p.is_regular_file()) ++n;
  }
  return n;
}

// --- content hashing --------------------------------------------------------

TEST(ContentHashTest, DeterministicHexAndSensitivity) {
  const ContentHash h = content_hash("hello");
  EXPECT_EQ(h.hex().size(), 32u);
  EXPECT_EQ(h.hex(), content_hash("hello").hex());
  EXPECT_NE(content_hash("hello").hex(), content_hash("hellp").hex());
  EXPECT_NE(content_hash("ab").hex(), content_hash("ba").hex());
  // Length is folded in: a prefix never collides with its extension.
  EXPECT_NE(content_hash("").hex(), content_hash(std::string_view("\0", 1)).hex());
  EXPECT_NE(content_hash("x").hex(), content_hash("xx").hex());
  for (char c : content_hash("qdockbank").hex()) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

// --- index round-trip -------------------------------------------------------

std::vector<EntryRecord> sample_records() {
  std::vector<EntryRecord> recs(2);
  recs[0].pdb_id = "1abc";
  recs[0].group = 'S';
  recs[0].sequence = "DGPHGM";
  recs[0].length = 6;
  recs[0].qubits = 23;
  recs[0].best_affinity = -4.75;
  recs[0].ca_rmsd = 0.56;
  recs[1].pdb_id = "2def";
  recs[1].group = 'L';
  recs[1].sequence = "ELISNSSDALDKI";
  recs[1].length = 13;
  recs[1].qubits = 92;
  recs[1].best_affinity = -5.625;
  recs[1].ca_rmsd = 0.63;
  for (auto& r : recs) {
    for (int i = 0; i < kArtifactCount; ++i) {
      r.artifacts[i].hash = content_hash(r.pdb_id + std::to_string(i)).hex();
      r.artifacts[i].size = 100 + static_cast<std::uint64_t>(i);
    }
  }
  return recs;
}

TEST(IndexTest, RoundTripIsExactAndByteStable) {
  const std::vector<EntryRecord> recs = sample_records();
  const std::string bytes = serialize_index(recs);
  const std::vector<EntryRecord> back = parse_index(bytes);
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(back[i].pdb_id, recs[i].pdb_id);
    EXPECT_EQ(back[i].group, recs[i].group);
    EXPECT_EQ(back[i].sequence, recs[i].sequence);
    EXPECT_EQ(back[i].length, recs[i].length);
    EXPECT_EQ(back[i].qubits, recs[i].qubits);
    // double_bits storage: bit-exact, not merely approximate.
    EXPECT_EQ(back[i].best_affinity, recs[i].best_affinity);
    EXPECT_EQ(back[i].ca_rmsd, recs[i].ca_rmsd);
    for (int a = 0; a < kArtifactCount; ++a) {
      EXPECT_EQ(back[i].artifacts[a].hash, recs[i].artifacts[a].hash);
      EXPECT_EQ(back[i].artifacts[a].size, recs[i].artifacts[a].size);
    }
  }
  EXPECT_EQ(serialize_index(back), bytes);
  EXPECT_EQ(serialize_index({}), serialize_index({}));  // empty is valid too
  EXPECT_TRUE(parse_index(serialize_index({})).empty());
}

TEST(IndexTest, CorruptionIsDetected) {
  const std::string bytes = serialize_index(sample_records());
  // Bad magic.
  std::string bad = bytes;
  bad[0] ^= 0x01;
  EXPECT_THROW(parse_index(bad), IoError);
  // Flipped payload byte: fingerprint mismatch.
  bad = bytes;
  bad[bytes.size() / 2] = static_cast<char>(bad[bytes.size() / 2] ^ 0x40);
  EXPECT_THROW(parse_index(bad), IoError);
  // Truncation (torn write).
  EXPECT_THROW(parse_index(std::string_view(bytes).substr(0, bytes.size() - 3)),
               IoError);
  EXPECT_THROW(parse_index(""), IoError);
  // Trailing garbage.
  EXPECT_THROW(parse_index(bytes + "x"), IoError);
}

// --- ingest -----------------------------------------------------------------

TEST_F(StoreTest, IngestBuildsSortedQueryableIndex) {
  Store store(path("store"));
  const IngestStats st = store.ingest_dataset(dataset_root());
  const std::size_t n = qdockbank_entries().size();
  EXPECT_EQ(st.entries_seen, n);
  EXPECT_EQ(st.artifacts_seen, 3 * n);
  EXPECT_EQ(st.blobs_written + st.blobs_deduplicated, 3 * n);
  EXPECT_GT(st.bytes_written, 0u);

  ASSERT_EQ(store.entries().size(), n);
  for (std::size_t i = 1; i < store.entries().size(); ++i) {
    EXPECT_LT(store.entries()[i - 1].pdb_id, store.entries()[i].pdb_id);
  }
  const EntryRecord* e = store.find("1yc4");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->group, 'L');
  EXPECT_EQ(e->sequence, "ELISNSSDALDKI");
  EXPECT_EQ(e->length, 13);
  EXPECT_EQ(e->qubits, 92);
  EXPECT_EQ(store.find("zzzz"), nullptr);

  // Artifact bytes come back verbatim.
  const std::string on_disk =
      read_file(entry_directory(dataset_root(), entry_by_id("1yc4")) +
                "/metadata.json");
  EXPECT_EQ(*store.read_artifact(*e, Artifact::Metadata), on_disk);

  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.entries, n);
  EXPECT_EQ(stats.blobs, count_blobs(path("store")));
  EXPECT_LE(stats.blob_bytes, stats.logical_bytes);
}

TEST_F(StoreTest, ReingestIsIdempotentAndDedups) {
  Store store(path("store"));
  store.ingest_dataset(dataset_root());
  const std::string index_bytes = read_file(store.index_path());
  const std::size_t blobs_before = count_blobs(path("store"));

  // Acceptance criterion: zero new blobs, byte-identical index.
  const IngestStats again = store.ingest_dataset(dataset_root());
  EXPECT_EQ(again.blobs_written, 0u);
  EXPECT_EQ(again.blobs_deduplicated, again.artifacts_seen);
  EXPECT_EQ(again.bytes_written, 0u);
  EXPECT_EQ(count_blobs(path("store")), blobs_before);
  EXPECT_EQ(read_file(store.index_path()), index_bytes);

  // A rebuilt copy of the same dataset root also dedups fully (the builder
  // is deterministic, so content hashes agree file-for-file).
  const std::string root2 = path("dataset_copy");
  qdb::testing::build_synthetic_dataset(root2);
  const IngestStats copy = store.ingest_dataset(root2);
  EXPECT_EQ(copy.blobs_written, 0u);
  EXPECT_EQ(read_file(store.index_path()), index_bytes);
}

TEST_F(StoreTest, ReopenLoadsPersistedIndex) {
  {
    Store store(path("store"));
    store.ingest_dataset(dataset_root());
  }
  Store reopened(path("store"));
  ASSERT_EQ(reopened.entries().size(), qdockbank_entries().size());
  const EntryRecord* e = reopened.find("3eax");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->sequence, "RYRDV");
  EXPECT_FALSE(
      reopened.read_artifact(*e, Artifact::Structure)->empty());
}

TEST_F(StoreTest, MissingEntryFileFailsIngest) {
  const std::string root = path("partial");
  qdb::testing::write_synthetic_entry(root, entry_by_id("3eax"));
  fs::remove(entry_directory(root, entry_by_id("3eax")) + "/docking.json");
  Store store(path("store"));
  EXPECT_THROW(store.ingest_dataset(root), IoError);
}

TEST_F(StoreTest, ReadArtifactUsesCache) {
  Store store(path("store"), /*cache_capacity=*/8);
  store.ingest_dataset(dataset_root());
  const EntryRecord* e = store.find("1yc4");
  ASSERT_NE(e, nullptr);
  const auto first = store.read_artifact(*e, Artifact::Docking);
  const std::size_t misses = store.cache().misses();
  const auto second = store.read_artifact(*e, Artifact::Docking);
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(store.cache().misses(), misses);  // second read was a hit
  EXPECT_GT(store.cache().hits(), 0u);
}

// --- LRU cache --------------------------------------------------------------

TEST(BlobCacheTest, EvictsLeastRecentlyUsedAndCounts) {
  BlobCache cache(2);
  auto val = [](const char* s) {
    return std::make_shared<const std::string>(s);
  };
  cache.put("a", val("A"));
  cache.put("b", val("B"));
  ASSERT_NE(cache.get("a"), nullptr);  // refresh "a": now "b" is LRU
  cache.put("c", val("C"));            // evicts "b"
  EXPECT_EQ(cache.get("b"), nullptr);
  ASSERT_NE(cache.get("a"), nullptr);
  ASSERT_NE(cache.get("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_NEAR(cache.hit_rate(), 3.0 / 4.0, 1e-12);

  // Re-inserting an existing key replaces the value without eviction.
  cache.put("a", val("A2"));
  EXPECT_EQ(*cache.get("a"), "A2");
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(BlobCacheTest, ZeroCapacityDisables) {
  BlobCache cache(0);
  cache.put("a", std::make_shared<const std::string>("A"));
  EXPECT_EQ(cache.get("a"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hit_rate(), 0.0);
}

// --- fault-injected ingest --------------------------------------------------

TEST_F(StoreTest, BlobWriteFaultLeavesStoreConsistentAndReingestConverges) {
  FaultInjector& fi = FaultInjector::instance();
  fi.set_seed(7);
  FaultSiteConfig cfg;
  cfg.trigger_on_nth = 10;  // fail on the 10th new blob write
  cfg.kind = FaultKind::Io;
  fi.configure("store.ingest.io", cfg);

  Store store(path("store"));
  {
    FaultScope scope("ingest", 1);
    EXPECT_THROW(store.ingest_dataset(dataset_root()), IoError);
  }
  // The crash left at worst unreferenced blobs — never an index.
  EXPECT_FALSE(fs::exists(store.index_path()));
  EXPECT_EQ(fi.fire_count("store.ingest.io"), 1u);

  // With the fault cleared, re-ingest converges: the survivors dedup and the
  // store ends bit-identical to a clean ingest.
  fi.clear();
  Store retry(path("store"));
  const IngestStats st = retry.ingest_dataset(dataset_root());
  EXPECT_GT(st.blobs_deduplicated, 0u);  // partial first pass left blobs
  EXPECT_EQ(retry.entries().size(), qdockbank_entries().size());

  Store clean(path("clean_store"));
  clean.ingest_dataset(dataset_root());
  EXPECT_EQ(read_file(retry.index_path()), read_file(clean.index_path()));
}

TEST_F(StoreTest, IndexWriteFaultPreservesPreviousIndex) {
  Store store(path("store"));
  // First ingest only the S group's worth of files: build a partial root.
  const std::string partial = path("partial");
  for (const DatasetEntry* e : entries_in_group(Group::S)) {
    qdb::testing::write_synthetic_entry(partial, *e);
  }
  store.ingest_dataset(partial);
  const std::string old_index = read_file(store.index_path());

  FaultInjector& fi = FaultInjector::instance();
  FaultSiteConfig cfg;
  cfg.trigger_on_nth = 1;
  cfg.kind = FaultKind::Io;
  fi.configure("store.index.write", cfg);
  {
    FaultScope scope("ingest", 1);
    EXPECT_THROW(store.ingest_dataset(dataset_root()), IoError);
  }
  // The previous index is untouched (write_file_atomic never tears), so a
  // reopened store still serves the S group.
  EXPECT_EQ(read_file(store.index_path()), old_index);
  Store reopened(path("store"));
  EXPECT_EQ(reopened.entries().size(), entries_in_group(Group::S).size());

  fi.clear();
  const IngestStats st = store.ingest_dataset(dataset_root());
  EXPECT_EQ(st.blobs_written, 0u);  // all blobs landed before the fault
  EXPECT_EQ(Store(path("store")).entries().size(), qdockbank_entries().size());
}

}  // namespace
}  // namespace qdb::store
