// Ablation for the 5.2 noise-robustness claim: VQE solution quality as the
// Eagle noise model is scaled from ideal (0x) to 4x.  The paper argues
// utility-level noise acts as a stochastic perturbation that barely hurts
// (and can help escape local minima) because CVaR-style sampling only needs
// good bitstrings, not good averages.
#include "bench_util.h"
#include "lattice/solver.h"
#include "vqe/vqe.h"

int main() {
  using namespace qdb;
  bench::header("Ablation (paper 5.2) - VQE quality vs hardware noise level");

  const char* ids[] = {"2bok", "1e2l", "5cxa"};
  Table t({"PDB", "Noise scale", "Min estimate", "Sampled E_min", "Gap to exact",
           "Hit optimum"});
  for (const char* id : ids) {
    const DatasetEntry& entry = entry_by_id(id);
    const FoldingHamiltonian h = entry_hamiltonian(entry);
    const double exact = ExactSolver().solve(h).energy;

    for (double scale : {0.0, 0.5, 1.0, 2.0, 4.0}) {
      VqeOptions opt;
      opt.noise = NoiseModel::eagle_r3().scaled(scale);
      opt.seed = 7;
      opt.run_id = entry.pdb_id;
      opt.max_evaluations = 70;
      opt.shots_per_eval = 256;
      opt.final_shots = 6000;
      opt.refine_bitstring = false;  // isolate the quantum stage
      const VqeResult r = VqeDriver(h, opt).run();
      t.add_row({id, format_fixed(scale, 1), format_fixed(r.lowest_energy, 2),
                 format_fixed(r.sampled_min_energy, 2),
                 format_fixed(r.sampled_min_energy - exact, 2),
                 r.sampled_min_energy - exact < 1.0 ? "yes" : "no"});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("paper claim (5.2): moderate noise acts as a stochastic perturbation\n"
              "that helps escape local minima — the sampled minimum stays near (or\n"
              "even improves toward) the exact optimum as noise broadens the measured\n"
              "ensemble, while only the estimate stability degrades.\n");
  return 0;
}
