// Ablation for the 5.3 margin strategy: routed depth and SWAP count of the
// EfficientSU2 circuits on the heavy-hex Eagle topology as the ancilla
// margin grows from 0 to 12.  The paper claims 5-10 extra qubits materially
// reduce the executed depth by giving the router freedom.
#include "bench_util.h"
#include "quantum/ansatz.h"
#include "transpile/coupling.h"
#include "transpile/router.h"

int main() {
  using namespace qdb;
  bench::header("Ablation (paper 5.3) - ancilla margin vs routed circuit depth");

  const CouplingMap eagle = CouplingMap::eagle127();

  for (const int length : {8, 11, 14}) {
    const int nq = encoding_qubits(length);
    const EfficientSU2 ansatz(nq, 2);
    std::vector<double> params(static_cast<std::size_t>(ansatz.num_parameters()), 0.3);
    const Circuit logical = ansatz.build(params);

    std::printf("-- fragment length %d (%d logical qubits, ideal depth %d) --\n", length,
                nq, logical.depth());
    Table t({"Margin", "Allocated", "SWAPs", "Routed depth", "2q gates"});
    int depth_margin0 = 0;
    for (int margin : {0, 2, 4, 6, 8, 10, 12}) {
      const TranspileReport r = transpile_for_device(logical, eagle, margin);
      if (margin == 0) depth_margin0 = r.depth;
      t.add_row({format("%d", margin), format("%d", r.allocated_qubits),
                 format("%d", r.swaps_inserted), format("%d", r.depth),
                 format("%zu", r.two_qubit_gates)});
    }
    std::printf("%s", t.to_string().c_str());
    const TranspileReport best = transpile_for_device(logical, eagle, 8);
    std::printf("depth reduction at margin 8: %.1f%%\n\n",
                100.0 * (1.0 - static_cast<double>(best.depth) / depth_margin0));
  }
  std::printf("paper claim: a 5-10 qubit margin significantly reduces routed depth.\n");
  return 0;
}
