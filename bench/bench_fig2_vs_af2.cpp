// Reproduces Figure 2: per-entry distribution of docking affinity and RMSD,
// QDock vs AlphaFold2 (surrogate), across All/L/M/S groups.
// Paper win rates: affinity 96.4%, RMSD 92.7%.
#include "bench_util.h"

int main() {
  qdb::bench::run_method_comparison(qdb::Method::AF2, "Figure 2", 96.4, 92.7);
  return 0;
}
