// Reproduces Figure 3: per-entry distribution of docking affinity and RMSD,
// QDock vs AlphaFold3 (surrogate), across All/L/M/S groups.
// Paper win rates: affinity 90.9%, RMSD 80.0%.
#include "bench_util.h"

int main() {
  qdb::bench::run_method_comparison(qdb::Method::AF3, "Figure 3", 90.9, 80.0);
  return 0;
}
