// Reproduces Figure 4: distribution statistics of affinity and RMSD for
// QDock, AF2 and AF3 across the whole dataset and per group (the box-plot
// summaries the paper shows; lower is better for both metrics).
#include <algorithm>

#include "bench_util.h"

namespace {

struct Stats {
  double mean = 0.0, median = 0.0, q1 = 0.0, q3 = 0.0, lo = 0.0, hi = 0.0;
};

Stats stats_of(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const auto at = [&](double f) {
    return xs[static_cast<std::size_t>(f * static_cast<double>(xs.size() - 1))];
  };
  Stats s;
  for (double x : xs) s.mean += x;
  s.mean /= static_cast<double>(xs.size());
  s.median = at(0.5);
  s.q1 = at(0.25);
  s.q3 = at(0.75);
  s.lo = xs.front();
  s.hi = xs.back();
  return s;
}

}  // namespace

int main() {
  using namespace qdb;
  bench::header("Figure 4 - affinity and RMSD distributions per method");

  Pipeline pipeline;
  const Method methods[] = {Method::QDock, Method::AF2, Method::AF3};
  std::vector<std::vector<Evaluation>> evals;
  for (Method m : methods) evals.push_back(pipeline.evaluate_all(m));

  for (const char* metric : {"affinity (kcal/mol)", "rmsd (A)"}) {
    const bool is_affinity = metric[0] == 'a';
    std::printf("-- %s --\n", metric);
    Table t({"Method", "Group", "mean", "median", "q1", "q3", "min", "max"});
    for (std::size_t mi = 0; mi < 3; ++mi) {
      for (int gi = -1; gi < 3; ++gi) {
        std::vector<double> xs;
        for (const Evaluation& e : evals[mi]) {
          if (gi >= 0 && e.group != static_cast<Group>(gi)) continue;
          xs.push_back(is_affinity ? e.affinity : e.rmsd);
        }
        const Stats s = stats_of(std::move(xs));
        t.add_row({method_name(methods[mi]), gi < 0 ? "All" : group_name(static_cast<Group>(gi)),
                   format_fixed(s.mean, 3), format_fixed(s.median, 3), format_fixed(s.q1, 3),
                   format_fixed(s.q3, 3), format_fixed(s.lo, 3), format_fixed(s.hi, 3)});
      }
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  std::printf("paper shape: QDock's distributions sit below AF2/AF3 on both metrics,\n"
              "with AF3 between QDock and AF2 (its RMSD gap narrows most on group L).\n");
  return 0;
}
