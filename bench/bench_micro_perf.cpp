// Micro-benchmarks (google-benchmark) for the performance-critical kernels:
// statevector gate application, MPS circuit simulation and sampling,
// Hamiltonian energy evaluation, exact solving, Vina scoring, and docking.
#include <benchmark/benchmark.h>

#include "core/qdockbank.h"
#include "quantum/ansatz.h"
#include "quantum/mps.h"
#include "quantum/statevector.h"

namespace {

using namespace qdb;

void BM_StatevectorGates(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  Statevector sv(nq);
  Circuit c(nq);
  for (int q = 0; q < nq; ++q) c.ry(0.3, q);
  for (int q = 0; q + 1 < nq; ++q) c.cx(q, q + 1);
  for (auto _ : state) {
    sv.apply(c);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(c.size()));
}
BENCHMARK(BM_StatevectorGates)->Arg(10)->Arg(16)->Arg(20);

void BM_MpsAnsatzApply(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  const EfficientSU2 ansatz(nq, 2);
  Rng rng(1);
  const auto params = ansatz.initial_point(rng, 0.5);
  const Circuit c = ansatz.build(params);
  for (auto _ : state) {
    MpsSimulator mps(nq);
    mps.apply(c);
    benchmark::DoNotOptimize(mps.max_bond_reached());
  }
}
BENCHMARK(BM_MpsAnsatzApply)->Arg(10)->Arg(22)->Arg(40);

void BM_MpsSampling(benchmark::State& state) {
  const int nq = 22;  // L-group register
  const EfficientSU2 ansatz(nq, 2);
  Rng rng(1);
  MpsSimulator mps(nq);
  mps.apply(ansatz.build(ansatz.initial_point(rng, 0.5)));
  for (auto _ : state) {
    auto shots = mps.sample(static_cast<std::size_t>(state.range(0)), rng);
    benchmark::DoNotOptimize(shots.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MpsSampling)->Arg(256)->Arg(4096);

void BM_HamiltonianEnergy(benchmark::State& state) {
  const DatasetEntry& e = entry_by_id("4jpy");  // 14 residues
  const FoldingHamiltonian h = entry_hamiltonian(e);
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.energy(x));
    x = (x + 0x9e3779b9ULL) & ((1ULL << 22) - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HamiltonianEnergy);

void BM_ExactSolver(benchmark::State& state) {
  const DatasetEntry& e = entry_by_id(state.range(0) == 0 ? "2bok" : "4jpy");
  const FoldingHamiltonian h = entry_hamiltonian(e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactSolver().solve(h).energy);
  }
}
BENCHMARK(BM_ExactSolver)->Arg(0)->Arg(1);

void BM_VinaScoring(benchmark::State& state) {
  Pipeline pipeline;
  const DatasetEntry& e = entry_by_id("2bok");
  const Structure& receptor = pipeline.reference(e);
  const Ligand& lig = pipeline.ligand(e);
  const ReceptorGrid grid(type_receptor(receptor), 8.0);
  const auto coords = lig.conformation(lig.neutral_pose());
  for (auto _ : state) {
    benchmark::DoNotOptimize(intermolecular_energy(grid, lig, coords));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VinaScoring);

void BM_DockingRun(benchmark::State& state) {
  Pipeline pipeline;
  const DatasetEntry& e = entry_by_id("3ckz");
  const Structure& receptor = pipeline.reference(e);
  const Ligand& lig = pipeline.ligand(e);
  DockingParams params;
  params.num_runs = 1;
  params.mc_steps = 300;
  for (auto _ : state) {
    params.seed++;
    benchmark::DoNotOptimize(dock(receptor, lig, params).best_affinity);
  }
}
BENCHMARK(BM_DockingRun);

}  // namespace

BENCHMARK_MAIN();
