// Micro-benchmarks (google-benchmark) for the performance-critical kernels:
// statevector gate application, MPS circuit simulation and sampling,
// Hamiltonian energy evaluation (per-shot vs histogram+scratch), the batch
// executor, exact solving, Vina scoring, and docking.  main() additionally
// runs a direct A/B of the stage-2 evaluation pipeline and writes the
// numbers to BENCH_micro_perf.json so the perf trajectory is tracked across
// PRs.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "common/parallel.h"
#include "obs/trace.h"
#include "core/qdockbank.h"
#include "data/batch.h"
#include "quantum/ansatz.h"
#include "quantum/fusion.h"
#include "quantum/histogram.h"
#include "quantum/kernels.h"
#include "quantum/mps.h"
#include "quantum/statevector.h"
#include "transpile/basis.h"

namespace {

using namespace qdb;

/// Synthetic stage-2 shot stream on the 14-residue / 22-qubit 4jpy register:
/// `shots` draws concentrated on `distinct` bitstrings — the shape a frozen
/// circuit's measurement distribution actually has.
std::vector<std::uint64_t> synthetic_shots(const FoldingHamiltonian& h,
                                           std::size_t shots, std::size_t distinct) {
  Rng rng(fnv1a("stage2-shots"));
  const std::uint64_t dim = std::uint64_t{1} << h.num_qubits();
  std::vector<std::uint64_t> pool(distinct);
  for (auto& x : pool) x = rng.below(dim);
  std::vector<std::uint64_t> out(shots);
  // Zipf-ish concentration: low pool indices dominate, like a trained ansatz.
  for (auto& x : out) {
    const double u = rng.uniform();
    const auto idx = static_cast<std::size_t>(static_cast<double>(distinct) * u * u);
    x = pool[std::min(idx, distinct - 1)];
  }
  return out;
}

/// The pre-optimization evaluation loop: one heap-allocating energy
/// evaluation per *shot* (the old FoldingHamiltonian::energy path).
double eval_per_shot_naive(const FoldingHamiltonian& h,
                           const std::vector<std::uint64_t>& shots) {
  double lo = std::numeric_limits<double>::infinity();
  for (std::uint64_t x : shots) {
    lo = std::min(lo, h.energy_of_turns(decode_turns(x, h.length())));
  }
  return lo;
}

/// The histogram + scratch-kernel pipeline: collapse to distinct bitstrings,
/// score each once through the batched allocation-free kernel.
double eval_histogram(const FoldingHamiltonian& h,
                      const std::vector<std::uint64_t>& shots) {
  const auto entries = sorted_entries(histogram_from_shots(shots));
  std::vector<std::uint64_t> distinct(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) distinct[i] = entries[i].first;
  std::vector<double> energies(distinct.size());
  h.energies(distinct, energies);
  return *std::min_element(energies.begin(), energies.end());
}

/// The VQE shot-scoring workload: a transpiled (native-basis, simplified)
/// EfficientSU2(nq, 2) at a fixed random point — the circuit shape both the
/// fused engine and the legacy Statevector execute per trajectory.
Circuit transpiled_ansatz(int nq) {
  const EfficientSU2 ansatz(nq, 2);
  Rng rng(fnv1a("kernel-bench"));
  return simplify_native(to_native_basis(ansatz.build(ansatz.initial_point(rng, 0.5))));
}

void BM_StatevectorGates(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  Statevector sv(nq);
  Circuit c(nq);
  for (int q = 0; q < nq; ++q) c.ry(0.3, q);
  for (int q = 0; q + 1 < nq; ++q) c.cx(q, q + 1);
  for (auto _ : state) {
    sv.apply(c);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(c.size()));
}
BENCHMARK(BM_StatevectorGates)->Arg(10)->Arg(16)->Arg(20);

// Fused engine on the transpiled ansatz: range(0) = qubits, range(1) selects
// the precision (0 = f64 exact traversal fusion, 1 = f32 matrix fusion).
// Compare against BM_StatevectorGates / the unfused summary below.
void BM_FusedAnsatzApply(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  const Precision prec = state.range(1) == 0 ? Precision::f64 : Precision::f32;
  const Circuit c = transpiled_ansatz(nq);
  FusedEngine eng(nq, prec);
  const FusedProgram prog =
      fuse_circuit(c, FusionOptions{prec == Precision::f32, 0});
  for (auto _ : state) {
    eng.reset();
    eng.apply(prog);
    benchmark::DoNotOptimize(eng.probability(0));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(c.size()));
  state.SetLabel(std::string(precision_name(prec)) + " block=" +
                 std::to_string(eng.block_qubits()));
}
BENCHMARK(BM_FusedAnsatzApply)->Args({10, 0})->Args({16, 0})->Args({16, 1})->Args({20, 1});

void BM_MpsAnsatzApply(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  const EfficientSU2 ansatz(nq, 2);
  Rng rng(1);
  const auto params = ansatz.initial_point(rng, 0.5);
  const Circuit c = ansatz.build(params);
  for (auto _ : state) {
    MpsSimulator mps(nq);
    mps.apply(c);
    benchmark::DoNotOptimize(mps.max_bond_reached());
  }
}
BENCHMARK(BM_MpsAnsatzApply)->Arg(10)->Arg(22)->Arg(40);

void BM_MpsSampling(benchmark::State& state) {
  const int nq = 22;  // L-group register
  const EfficientSU2 ansatz(nq, 2);
  Rng rng(1);
  MpsSimulator mps(nq);
  mps.apply(ansatz.build(ansatz.initial_point(rng, 0.5)));
  for (auto _ : state) {
    auto shots = mps.sample(static_cast<std::size_t>(state.range(0)), rng);
    benchmark::DoNotOptimize(shots.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MpsSampling)->Arg(256)->Arg(4096);

void BM_HamiltonianEnergy(benchmark::State& state) {
  const DatasetEntry& e = entry_by_id("4jpy");  // 14 residues
  const FoldingHamiltonian h = entry_hamiltonian(e);
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.energy(x));
    x = (x + 0x9e3779b9ULL) & ((1ULL << 22) - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HamiltonianEnergy);

void BM_HamiltonianEnergyScratch(benchmark::State& state) {
  const FoldingHamiltonian h = entry_hamiltonian(entry_by_id("4jpy"));
  FoldingHamiltonian::Scratch scratch;
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.energy_scratch(x, scratch));
    x = (x + 0x9e3779b9ULL) & ((1ULL << 22) - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HamiltonianEnergyScratch);

// Stage-2 evaluation A/B: 100k shots on the 22-qubit 4jpy register drawn
// from `range(0)` distinct bitstrings.  PerShot is the pre-optimization
// loop; Batch is the histogram + scratch-kernel pipeline.
void BM_HamiltonianEnergyPerShot(benchmark::State& state) {
  const FoldingHamiltonian h = entry_hamiltonian(entry_by_id("4jpy"));
  const auto shots = synthetic_shots(h, 100000, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval_per_shot_naive(h, shots));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(shots.size()));
}
BENCHMARK(BM_HamiltonianEnergyPerShot)->Arg(512)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_HamiltonianEnergyBatch(benchmark::State& state) {
  const FoldingHamiltonian h = entry_hamiltonian(entry_by_id("4jpy"));
  const auto shots = synthetic_shots(h, 100000, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval_histogram(h, shots));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(shots.size()));
}
BENCHMARK(BM_HamiltonianEnergyBatch)->Arg(512)->Arg(4096)->Unit(benchmark::kMillisecond);

// Dataset batch executor: four S-group fragments with a small VQE budget,
// 1 thread vs all hardware threads.  Reports are byte-identical either way
// (tests/test_perf.cpp); only the wall time changes.
void BM_BatchExecutor(benchmark::State& state) {
  std::vector<const DatasetEntry*> subset;
  for (const DatasetEntry* e : entries_in_group(Group::S)) {
    subset.push_back(e);
    if (subset.size() == 4) break;
  }
  BatchOptions opt;
  opt.run_vqe = true;
  opt.vqe.max_evaluations = 8;
  opt.vqe.shots_per_eval = 64;
  opt.vqe.final_shots = 1000;
  opt.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_batch(subset, opt).total_device_time_s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(subset.size()));
}
BENCHMARK(BM_BatchExecutor)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_ExactSolver(benchmark::State& state) {
  const DatasetEntry& e = entry_by_id(state.range(0) == 0 ? "2bok" : "4jpy");
  const FoldingHamiltonian h = entry_hamiltonian(e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactSolver().solve(h).energy);
  }
}
BENCHMARK(BM_ExactSolver)->Arg(0)->Arg(1);

void BM_VinaScoring(benchmark::State& state) {
  Pipeline pipeline;
  const DatasetEntry& e = entry_by_id("2bok");
  const Structure& receptor = pipeline.reference(e);
  const Ligand& lig = pipeline.ligand(e);
  const ReceptorGrid grid(type_receptor(receptor), 8.0);
  const auto coords = lig.conformation(lig.neutral_pose());
  for (auto _ : state) {
    benchmark::DoNotOptimize(intermolecular_energy(grid, lig, coords));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VinaScoring);

void BM_DockingRun(benchmark::State& state) {
  Pipeline pipeline;
  const DatasetEntry& e = entry_by_id("3ckz");
  const Structure& receptor = pipeline.reference(e);
  const Ligand& lig = pipeline.ligand(e);
  DockingParams params;
  params.num_runs = 1;
  params.mc_steps = 300;
  for (auto _ : state) {
    params.seed++;
    benchmark::DoNotOptimize(dock(receptor, lig, params).best_affinity);
  }
}
BENCHMARK(BM_DockingRun);

using MetricList = std::vector<std::pair<std::string, double>>;

/// Direct A/B of the stage-2 evaluation pipeline (the acceptance-criterion
/// workload: 100k shots, 14-residue / 22-qubit fragment).  Returns the
/// metrics destined for BENCH_micro_perf.json.
MetricList stage2_speedup_summary() {
  const FoldingHamiltonian h = entry_hamiltonian(entry_by_id("4jpy"));
  const std::size_t kShots = 100000;
  const std::size_t kDistinct = 4096;
  const auto shots = synthetic_shots(h, kShots, kDistinct);
  const std::size_t distinct = histogram_from_shots(shots).size();

  // Warm up, then time the best of three runs of each path.
  double naive_best = 1e300, hist_best = 1e300;
  double naive_lo = 0.0, hist_lo = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    {
      obs::Span t1("bench.stage2.naive");
      naive_lo = eval_per_shot_naive(h, shots);
      naive_best = std::min(naive_best, t1.seconds());
    }
    {
      obs::Span t2("bench.stage2.histogram");
      hist_lo = eval_histogram(h, shots);
      hist_best = std::min(hist_best, t2.seconds());
    }
  }
  const double speedup = naive_best / hist_best;
  std::printf("\nstage-2 evaluation A/B (4jpy, %zu shots, %zu distinct):\n",
              kShots, distinct);
  std::printf("  per-shot naive path  %8.2f ms\n", naive_best * 1e3);
  std::printf("  histogram + scratch  %8.2f ms\n", hist_best * 1e3);
  std::printf("  speedup              %8.1fx  (acceptance: >= 5x)\n", speedup);
  if (naive_lo != hist_lo) {
    std::printf("  WARNING: paths disagree (%.12g vs %.12g)\n", naive_lo, hist_lo);
  }
  return {{"stage2_shots", static_cast<double>(kShots)},
          {"stage2_distinct", static_cast<double>(distinct)},
          {"per_shot_naive_ms", naive_best * 1e3},
          {"histogram_scratch_ms", hist_best * 1e3},
          {"stage2_speedup", speedup},
          {"paths_agree", naive_lo == hist_lo ? 1.0 : 0.0},
          {"hardware_threads", static_cast<double>(hardware_threads())}};
}

/// Fused-kernel A/B (ISSUE 6 acceptance workload): the 16-qubit transpiled
/// ansatz applied through (a) the unfused scalar Statevector — the engine on
/// main before this change — (b) the fused f64 engine (bit-identical path)
/// and (c) the fused f32 engine (stage-1 path), plus a matrix-fusion depth
/// sweep.  Keys are appended to BENCH_micro_perf.json *after* the existing
/// stage-2 keys so diff tooling sees append-only growth.
MetricList fused_kernel_summary() {
  const int nq = 16;
  const Circuit c = transpiled_ansatz(nq);
  constexpr int kReps = 5;

  double unfused_best = 1e300;
  {
    Statevector sv(nq);
    for (int rep = 0; rep < kReps; ++rep) {
      sv.reset();
      obs::Span t("bench.kernel.unfused_f64");
      sv.apply(c);
      unfused_best = std::min(unfused_best, t.seconds());
    }
  }

  FusedEngine f64(nq, Precision::f64);
  FusedEngine f32(nq, Precision::f32);
  const FusedProgram prog64 = fuse_circuit(c, FusionOptions{false, 0});
  const FusedProgram prog32 = fuse_circuit(c, FusionOptions{true, 0});
  double f64_best = 1e300, f32_best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    f64.reset();
    obs::Span t("bench.kernel.fused_f64");
    f64.apply(prog64);
    f64_best = std::min(f64_best, t.seconds());
  }
  for (int rep = 0; rep < kReps; ++rep) {
    f32.reset();
    obs::Span t("bench.kernel.fused_f32");
    f32.apply(prog32);
    f32_best = std::min(f32_best, t.seconds());
  }

  std::printf("\nfused-kernel A/B (%d-qubit transpiled ansatz, %zu gates):\n", nq,
              c.size());
  std::printf("  unfused scalar Statevector %8.2f ms\n", unfused_best * 1e3);
  std::printf("  fused f64 (bit-identical)  %8.2f ms  %6.1fx\n", f64_best * 1e3,
              unfused_best / f64_best);
  std::printf("  fused f32 (stage-1)        %8.2f ms  %6.1fx  (acceptance: >= 5x)\n",
              f32_best * 1e3, unfused_best / f32_best);
  std::printf("  avx2=%d  block f64=%d f32=%d  fusion ratio f32=%.2f\n",
              kernels_avx2_active() ? 1 : 0, f64.block_qubits(), f32.block_qubits(),
              prog32.fusion_ratio());

  MetricList m = {{"kernel.nq", static_cast<double>(nq)},
                  {"kernel.gates", static_cast<double>(c.size())},
                  {"kernel.avx2", kernels_avx2_active() ? 1.0 : 0.0},
                  {"kernel.block_qubits_f64", static_cast<double>(f64.block_qubits())},
                  {"kernel.block_qubits_f32", static_cast<double>(f32.block_qubits())},
                  {"kernel.unfused_f64_ms", unfused_best * 1e3},
                  {"kernel.fused_f64_ms", f64_best * 1e3},
                  {"kernel.fused_f32_ms", f32_best * 1e3},
                  {"kernel.speedup_f64", unfused_best / f64_best},
                  {"kernel.speedup_f32", unfused_best / f32_best},
                  {"kernel.fusion_ratio_f32", prog32.fusion_ratio()}};

  // Matrix-fusion depth sweep (f32): cap the 1q gates a run may absorb.
  // max_run 0 = unlimited, the production setting.
  std::printf("  f32 fusion-depth sweep (max_run: ms / ops):\n");
  for (const int cap : {1, 2, 4, 8, 0}) {
    const FusedProgram prog = fuse_circuit(c, FusionOptions{true, cap});
    double best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
      f32.reset();
      obs::Span t("bench.kernel.sweep");
      f32.apply(prog);
      best = std::min(best, t.seconds());
    }
    std::printf("    max_run=%-2d %8.2f ms  %4zu ops\n", cap, best * 1e3,
                prog.ops.size());
    std::string key = "kernel.sweep.max_run_";
    key += std::to_string(cap);
    m.emplace_back(key + "_ms", best * 1e3);
    m.emplace_back(key + "_ops", static_cast<double>(prog.ops.size()));
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  MetricList metrics = stage2_speedup_summary();
  const MetricList kernel = fused_kernel_summary();
  metrics.insert(metrics.end(), kernel.begin(), kernel.end());
  bench::emit_bench_json("micro_perf", metrics);
  return 0;
}
