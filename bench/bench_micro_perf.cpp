// Micro-benchmarks (google-benchmark) for the performance-critical kernels:
// statevector gate application, MPS circuit simulation and sampling,
// Hamiltonian energy evaluation (per-shot vs histogram+scratch), the batch
// executor, exact solving, Vina scoring, and docking.  main() additionally
// runs a direct A/B of the stage-2 evaluation pipeline and writes the
// numbers to BENCH_micro_perf.json so the perf trajectory is tracked across
// PRs.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "common/parallel.h"
#include "obs/trace.h"
#include "core/qdockbank.h"
#include "data/batch.h"
#include "quantum/ansatz.h"
#include "quantum/histogram.h"
#include "quantum/mps.h"
#include "quantum/statevector.h"

namespace {

using namespace qdb;

/// Synthetic stage-2 shot stream on the 14-residue / 22-qubit 4jpy register:
/// `shots` draws concentrated on `distinct` bitstrings — the shape a frozen
/// circuit's measurement distribution actually has.
std::vector<std::uint64_t> synthetic_shots(const FoldingHamiltonian& h,
                                           std::size_t shots, std::size_t distinct) {
  Rng rng(fnv1a("stage2-shots"));
  const std::uint64_t dim = std::uint64_t{1} << h.num_qubits();
  std::vector<std::uint64_t> pool(distinct);
  for (auto& x : pool) x = rng.below(dim);
  std::vector<std::uint64_t> out(shots);
  // Zipf-ish concentration: low pool indices dominate, like a trained ansatz.
  for (auto& x : out) {
    const double u = rng.uniform();
    const auto idx = static_cast<std::size_t>(static_cast<double>(distinct) * u * u);
    x = pool[std::min(idx, distinct - 1)];
  }
  return out;
}

/// The pre-optimization evaluation loop: one heap-allocating energy
/// evaluation per *shot* (the old FoldingHamiltonian::energy path).
double eval_per_shot_naive(const FoldingHamiltonian& h,
                           const std::vector<std::uint64_t>& shots) {
  double lo = std::numeric_limits<double>::infinity();
  for (std::uint64_t x : shots) {
    lo = std::min(lo, h.energy_of_turns(decode_turns(x, h.length())));
  }
  return lo;
}

/// The histogram + scratch-kernel pipeline: collapse to distinct bitstrings,
/// score each once through the batched allocation-free kernel.
double eval_histogram(const FoldingHamiltonian& h,
                      const std::vector<std::uint64_t>& shots) {
  const auto entries = sorted_entries(histogram_from_shots(shots));
  std::vector<std::uint64_t> distinct(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) distinct[i] = entries[i].first;
  std::vector<double> energies(distinct.size());
  h.energies(distinct, energies);
  return *std::min_element(energies.begin(), energies.end());
}

void BM_StatevectorGates(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  Statevector sv(nq);
  Circuit c(nq);
  for (int q = 0; q < nq; ++q) c.ry(0.3, q);
  for (int q = 0; q + 1 < nq; ++q) c.cx(q, q + 1);
  for (auto _ : state) {
    sv.apply(c);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(c.size()));
}
BENCHMARK(BM_StatevectorGates)->Arg(10)->Arg(16)->Arg(20);

void BM_MpsAnsatzApply(benchmark::State& state) {
  const int nq = static_cast<int>(state.range(0));
  const EfficientSU2 ansatz(nq, 2);
  Rng rng(1);
  const auto params = ansatz.initial_point(rng, 0.5);
  const Circuit c = ansatz.build(params);
  for (auto _ : state) {
    MpsSimulator mps(nq);
    mps.apply(c);
    benchmark::DoNotOptimize(mps.max_bond_reached());
  }
}
BENCHMARK(BM_MpsAnsatzApply)->Arg(10)->Arg(22)->Arg(40);

void BM_MpsSampling(benchmark::State& state) {
  const int nq = 22;  // L-group register
  const EfficientSU2 ansatz(nq, 2);
  Rng rng(1);
  MpsSimulator mps(nq);
  mps.apply(ansatz.build(ansatz.initial_point(rng, 0.5)));
  for (auto _ : state) {
    auto shots = mps.sample(static_cast<std::size_t>(state.range(0)), rng);
    benchmark::DoNotOptimize(shots.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MpsSampling)->Arg(256)->Arg(4096);

void BM_HamiltonianEnergy(benchmark::State& state) {
  const DatasetEntry& e = entry_by_id("4jpy");  // 14 residues
  const FoldingHamiltonian h = entry_hamiltonian(e);
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.energy(x));
    x = (x + 0x9e3779b9ULL) & ((1ULL << 22) - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HamiltonianEnergy);

void BM_HamiltonianEnergyScratch(benchmark::State& state) {
  const FoldingHamiltonian h = entry_hamiltonian(entry_by_id("4jpy"));
  FoldingHamiltonian::Scratch scratch;
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.energy_scratch(x, scratch));
    x = (x + 0x9e3779b9ULL) & ((1ULL << 22) - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HamiltonianEnergyScratch);

// Stage-2 evaluation A/B: 100k shots on the 22-qubit 4jpy register drawn
// from `range(0)` distinct bitstrings.  PerShot is the pre-optimization
// loop; Batch is the histogram + scratch-kernel pipeline.
void BM_HamiltonianEnergyPerShot(benchmark::State& state) {
  const FoldingHamiltonian h = entry_hamiltonian(entry_by_id("4jpy"));
  const auto shots = synthetic_shots(h, 100000, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval_per_shot_naive(h, shots));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(shots.size()));
}
BENCHMARK(BM_HamiltonianEnergyPerShot)->Arg(512)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_HamiltonianEnergyBatch(benchmark::State& state) {
  const FoldingHamiltonian h = entry_hamiltonian(entry_by_id("4jpy"));
  const auto shots = synthetic_shots(h, 100000, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval_histogram(h, shots));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(shots.size()));
}
BENCHMARK(BM_HamiltonianEnergyBatch)->Arg(512)->Arg(4096)->Unit(benchmark::kMillisecond);

// Dataset batch executor: four S-group fragments with a small VQE budget,
// 1 thread vs all hardware threads.  Reports are byte-identical either way
// (tests/test_perf.cpp); only the wall time changes.
void BM_BatchExecutor(benchmark::State& state) {
  std::vector<const DatasetEntry*> subset;
  for (const DatasetEntry* e : entries_in_group(Group::S)) {
    subset.push_back(e);
    if (subset.size() == 4) break;
  }
  BatchOptions opt;
  opt.run_vqe = true;
  opt.vqe.max_evaluations = 8;
  opt.vqe.shots_per_eval = 64;
  opt.vqe.final_shots = 1000;
  opt.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_batch(subset, opt).total_device_time_s);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(subset.size()));
}
BENCHMARK(BM_BatchExecutor)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_ExactSolver(benchmark::State& state) {
  const DatasetEntry& e = entry_by_id(state.range(0) == 0 ? "2bok" : "4jpy");
  const FoldingHamiltonian h = entry_hamiltonian(e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactSolver().solve(h).energy);
  }
}
BENCHMARK(BM_ExactSolver)->Arg(0)->Arg(1);

void BM_VinaScoring(benchmark::State& state) {
  Pipeline pipeline;
  const DatasetEntry& e = entry_by_id("2bok");
  const Structure& receptor = pipeline.reference(e);
  const Ligand& lig = pipeline.ligand(e);
  const ReceptorGrid grid(type_receptor(receptor), 8.0);
  const auto coords = lig.conformation(lig.neutral_pose());
  for (auto _ : state) {
    benchmark::DoNotOptimize(intermolecular_energy(grid, lig, coords));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VinaScoring);

void BM_DockingRun(benchmark::State& state) {
  Pipeline pipeline;
  const DatasetEntry& e = entry_by_id("3ckz");
  const Structure& receptor = pipeline.reference(e);
  const Ligand& lig = pipeline.ligand(e);
  DockingParams params;
  params.num_runs = 1;
  params.mc_steps = 300;
  for (auto _ : state) {
    params.seed++;
    benchmark::DoNotOptimize(dock(receptor, lig, params).best_affinity);
  }
}
BENCHMARK(BM_DockingRun);

/// Direct A/B of the stage-2 evaluation pipeline (the acceptance-criterion
/// workload: 100k shots, 14-residue / 22-qubit fragment) with the results
/// written to BENCH_micro_perf.json.
void stage2_speedup_summary() {
  const FoldingHamiltonian h = entry_hamiltonian(entry_by_id("4jpy"));
  const std::size_t kShots = 100000;
  const std::size_t kDistinct = 4096;
  const auto shots = synthetic_shots(h, kShots, kDistinct);
  const std::size_t distinct = histogram_from_shots(shots).size();

  // Warm up, then time the best of three runs of each path.
  double naive_best = 1e300, hist_best = 1e300;
  double naive_lo = 0.0, hist_lo = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    {
      obs::Span t1("bench.stage2.naive");
      naive_lo = eval_per_shot_naive(h, shots);
      naive_best = std::min(naive_best, t1.seconds());
    }
    {
      obs::Span t2("bench.stage2.histogram");
      hist_lo = eval_histogram(h, shots);
      hist_best = std::min(hist_best, t2.seconds());
    }
  }
  const double speedup = naive_best / hist_best;
  std::printf("\nstage-2 evaluation A/B (4jpy, %zu shots, %zu distinct):\n",
              kShots, distinct);
  std::printf("  per-shot naive path  %8.2f ms\n", naive_best * 1e3);
  std::printf("  histogram + scratch  %8.2f ms\n", hist_best * 1e3);
  std::printf("  speedup              %8.1fx  (acceptance: >= 5x)\n", speedup);
  if (naive_lo != hist_lo) {
    std::printf("  WARNING: paths disagree (%.12g vs %.12g)\n", naive_lo, hist_lo);
  }
  bench::emit_bench_json(
      "micro_perf",
      {{"stage2_shots", static_cast<double>(kShots)},
       {"stage2_distinct", static_cast<double>(distinct)},
       {"per_shot_naive_ms", naive_best * 1e3},
       {"histogram_scratch_ms", hist_best * 1e3},
       {"stage2_speedup", speedup},
       {"paths_agree", naive_lo == hist_lo ? 1.0 : 0.0},
       {"hardware_threads", static_cast<double>(hardware_threads())}});
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  stage2_speedup_summary();
  return 0;
}
