// Virtual-screening funnel benchmark (ISSUE 9 acceptance): grid build cost,
// stage-1 filter throughput against full Vina rescoring on the SAME poses
// (acceptance: the grid filter is >= 10x cheaper per ligand), and the
// end-to-end two-stage funnel rate.  Numbers land in BENCH_screen.json so
// the screening-throughput trajectory is tracked across PRs.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "screen/funnel.h"
#include "screen/grid.h"
#include "screen/library.h"

int main() {
  using namespace qdb;
  using namespace qdb::screen;
  bench::header("Virtual screening - two-stage funnel over the 4jpy pocket");
  bench::ScopedBenchTrace trace;

  const DatasetEntry& entry = entry_by_id("4jpy");
  const Structure receptor = reference_structure(entry);

  ScreenOptions opt;
  opt.library = {1, 256};
  opt.top_k = 16;
  opt.stage1_keep = 0.125;
  opt.poses_per_ligand = 16;
  opt.poses_rescored = 4;

  // --- grid build (the amortised one-off cost) ------------------------------
  double grid_build_s = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    obs::Span t("bench.screen.grid_build");
    GridParams gp;
    gp.spacing = opt.grid_spacing;
    gp.padding = opt.grid_padding;
    const screen::ReceptorGrid g(receptor, gp);
    grid_build_s = std::min(grid_build_s, t.seconds());
  }
  const PreparedReceptor prepared = prepare_receptor(receptor, opt);
  const std::int64_t nodes = prepared.grid.num_nodes();

  // --- stage-1 filter vs full rescoring, same ligands, same poses -----------
  // The funnel's economics rest on this ratio: the filter must be an order
  // of magnitude cheaper per ligand so stage 1 can afford the whole library.
  const int kAbLigands = 64;
  const int kAbPoses = 8;
  std::vector<Ligand> ligands;
  std::vector<std::vector<Vec3>> confs;
  for (int i = 0; i < kAbLigands; ++i) {
    Ligand lig = library_ligand(opt.library, static_cast<std::uint64_t>(i));
    Rng rng(library_ligand_id(opt.library, static_cast<std::uint64_t>(i)),
            "bench.screen.ab", opt.library.seed);
    for (int p = 0; p < kAbPoses; ++p) {
      Pose pose = lig.neutral_pose();
      const double tx = rng.uniform(prepared.grid.box_lo().x, prepared.grid.box_hi().x);
      const double ty = rng.uniform(prepared.grid.box_lo().y, prepared.grid.box_hi().y);
      const double tz = rng.uniform(prepared.grid.box_lo().z, prepared.grid.box_hi().z);
      pose.translation = {tx, ty, tz};
      confs.push_back(lig.conformation(pose));
    }
    ligands.push_back(std::move(lig));
  }
  double filter_s = 1e300, exact_s = 1e300;
  double filter_sink = 0.0, exact_sink = 0.0;  // defeat dead-code elimination
  for (int rep = 0; rep < 3; ++rep) {
    {
      obs::Span t("bench.screen.stage1_filter");
      double acc = 0.0;
      for (int i = 0; i < kAbLigands; ++i) {
        for (int p = 0; p < kAbPoses; ++p) {
          acc += prepared.grid.filter_affinity(
              ligands[static_cast<std::size_t>(i)],
              confs[static_cast<std::size_t>(i * kAbPoses + p)]);
        }
      }
      filter_sink = acc;
      filter_s = std::min(filter_s, t.seconds());
    }
    {
      obs::Span t("bench.screen.full_rescore");
      double acc = 0.0;
      for (int i = 0; i < kAbLigands; ++i) {
        const Ligand& lig = ligands[static_cast<std::size_t>(i)];
        for (int p = 0; p < kAbPoses; ++p) {
          const double e = intermolecular_energy(
              prepared.rescoring, lig,
              confs[static_cast<std::size_t>(i * kAbPoses + p)], opt.weights);
          acc += affinity_from_energy(e, lig.num_torsions(), opt.weights);
        }
      }
      exact_sink = acc;
      exact_s = std::min(exact_s, t.seconds());
    }
  }
  const double filter_us_per_ligand = filter_s * 1e6 / kAbLigands;
  const double exact_us_per_ligand = exact_s * 1e6 / kAbLigands;
  const double speedup = exact_s / filter_s;
  const double stage1_ligands_per_s = kAbLigands / filter_s;

  // --- end-to-end funnel ----------------------------------------------------
  obs::Span funnel_span("bench.screen.funnel");
  const ScreenReport report = run_screen(prepared, entry.pdb_id, opt);
  const double funnel_s = funnel_span.seconds();
  const double ligands_per_s = static_cast<double>(report.ligands_screened) / funnel_s;

  Table t({"Metric", "Value"});
  t.add_row({"grid nodes", format("%lld", static_cast<long long>(nodes))});
  t.add_row({"grid build", format("%.1f ms", grid_build_s * 1e3)});
  t.add_row({"stage-1 filter / ligand", format("%.1f us", filter_us_per_ligand)});
  t.add_row({"full rescore / ligand", format("%.1f us", exact_us_per_ligand)});
  t.add_row({"stage-1 speedup", format("%.1fx  (acceptance: >= 10x)", speedup)});
  t.add_row({"funnel end-to-end", format("%.0f ligands/s", ligands_per_s)});
  t.add_row({"funnel keep rate", format("%.3f", report.keep_rate())});
  t.add_row({"ranked hits", format("%zu", report.hits.size())});
  std::printf("%s\n", t.to_string().c_str());
  if (!report.hits.empty()) {
    std::printf("best hit: %s  affinity %.3f kcal/mol (stage-1 %.3f)\n",
                report.hits.front().id.c_str(), report.hits.front().affinity,
                report.hits.front().stage1_score);
  }
  std::printf("(filter/exact accumulator check: %.6g / %.6g)\n", filter_sink,
              exact_sink);

  bench::emit_bench_json(
      "screen",
      {{"screen.grid_nodes", static_cast<double>(nodes)},
       {"screen.grid_build_us", grid_build_s * 1e6},
       {"screen.stage1_us_per_ligand", filter_us_per_ligand},
       {"screen.rescore_us_per_ligand", exact_us_per_ligand},
       {"screen.stage1_speedup", speedup},
       {"screen.stage1_ligands_per_s", stage1_ligands_per_s},
       {"screen.ligands_per_s", ligands_per_s},
       {"screen.keep_rate", report.keep_rate()},
       {"screen.ranked_hits", static_cast<double>(report.hits.size())}});
  return speedup >= 10.0 ? 0 : 1;
}
