// Reproduces the paper's headline resource claims (abstract & §1):
//   "over 60 hours of quantum processor runtime"
//   "total computational cost exceeding one million USD"
//   "hundreds of thousands of quantum circuit executions"
// by accounting the whole 55-entry batch, both from the published Tables
// 1-3 execution times and from our execution-time model.
#include "bench_util.h"
#include "data/batch.h"

int main() {
  using namespace qdb;
  bench::header("Headline claims - total runtime, cost and circuit executions");

  // The paper's own numbers (published exec times, no simulation needed).
  BatchOptions published;
  published.run_vqe = false;
  const BatchReport paper = run_batch_all(published);
  std::printf("from the published per-fragment execution times (Tables 1-3):\n");
  std::printf("  total device time  %.1f hours  (claim: > 60 hours)  -> %s\n",
              paper.total_device_hours(), paper.total_device_hours() > 60.0 ? "holds" : "FAILS");
  std::printf("  total cost         $%.0f at $1.60/s  (claim: > $1M)  -> %s\n",
              paper.total_cost_usd, paper.total_cost_usd > 1e6 ? "holds" : "FAILS");

  // Our modelled accounting under the paper budgets (no simulation: shots
  // and iterations at the published protocol drive the model).
  BatchOptions modeled;
  modeled.run_vqe = true;
  modeled.vqe = PipelineOptions::paper_profile().vqe;
  // Use the bounded bench budget for the optimisation itself but report the
  // time model at paper-scale shots; QDB_FULL=1 runs the full budgets.
  if (PipelineOptions::from_env().vqe.final_shots != modeled.vqe.final_shots) {
    modeled.vqe = PipelineOptions::from_env().vqe;
  }
  const BatchReport ours = run_batch_all(modeled);
  std::size_t total_shots = 0;
  for (const BatchJobRecord& j : ours.jobs) total_shots += j.shots;
  std::printf("\nfrom our execution-time model (budgets: %d evals, %zu+%zu shots/job):\n",
              modeled.vqe.max_evaluations, modeled.vqe.shots_per_eval, modeled.vqe.final_shots);
  std::printf("  total device time  %.1f hours\n", ours.total_device_hours());
  std::printf("  total cost         $%.0f\n", ours.total_cost_usd);
  std::printf("  circuit executions %zu shots across %zu jobs "
              "(claim: hundreds of thousands)\n", total_shots, ours.jobs.size());

  // Per-group breakdown of the published accounting.
  Table t({"Group", "Jobs", "Device hours", "Share"});
  for (Group g : {Group::L, Group::M, Group::S}) {
    double hours = 0.0;
    int jobs = 0;
    for (const BatchJobRecord& j : paper.jobs) {
      if (j.group == g) {
        hours += j.device_time_s / 3600.0;
        ++jobs;
      }
    }
    t.add_row({group_name(g), format("%d", jobs), format_fixed(hours, 1),
               format("%.0f%%", 100.0 * hours / paper.total_device_hours())});
  }
  std::printf("\n%s", t.to_string().c_str());

  bench::emit_bench_json("headline_cost",
                         {{"published_device_hours", paper.total_device_hours()},
                          {"published_cost_usd", paper.total_cost_usd},
                          {"modeled_device_hours", ours.total_device_hours()},
                          {"modeled_cost_usd", ours.total_cost_usd},
                          {"modeled_total_shots", static_cast<double>(total_shots)}});
  return 0;
}
