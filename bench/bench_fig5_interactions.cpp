// Reproduces Figure 5: coverage of the 400 amino-acid interaction types in
// QDockBank.  The paper counts the residue-pair types occurring across the
// dataset (395/400 covered; G-A and L-G among the most frequent) and checks
// them against the Miyazawa-Jernigan model's full 20x20 matrix.
#include <algorithm>
#include <map>

#include "bench_util.h"

int main() {
  using namespace qdb;
  bench::header("Figure 5 - amino-acid interaction coverage");

  // Count ordered-pair co-occurrence within fragments (any residue pair of
  // one fragment is a potential interaction in its conformational
  // ensemble); record as unordered type counts over the 210 distinct pairs,
  // reported against the 400 ordered combinations as in the paper.
  std::map<std::pair<char, char>, long> counts;
  for (const DatasetEntry& e : qdockbank_entries()) {
    const std::string seq = e.sequence;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      for (std::size_t j = i + 1; j < seq.size(); ++j) {
        const char a = std::min(seq[i], seq[j]);
        const char b = std::max(seq[i], seq[j]);
        ++counts[{a, b}];
      }
    }
  }

  // Coverage over the 400 ordered combinations (symmetric pairs count both
  // directions; the diagonal counts once).
  int covered_ordered = 0;
  for (const auto& [pair, n] : counts) {
    (void)n;
    covered_ordered += (pair.first == pair.second) ? 1 : 2;
  }
  std::printf("covered interaction types: %d / 400 (paper: 395/400)\n\n", covered_ordered);

  // Highest-frequency pairs.
  std::vector<std::pair<long, std::pair<char, char>>> ranked;
  for (const auto& [pair, n] : counts) ranked.push_back({n, pair});
  std::sort(ranked.rbegin(), ranked.rend());
  Table t({"Pair", "Count"});
  for (std::size_t i = 0; i < std::min<std::size_t>(12, ranked.size()); ++i) {
    t.add_row({format("%c-%c", ranked[i].second.first, ranked[i].second.second),
               format("%ld", ranked[i].first)});
  }
  std::printf("most frequent pairs (paper highlights G-A and L-G):\n%s\n",
              t.to_string().c_str());

  // Full MJ model coverage: every one of the 400 combinations is defined in
  // our contact-energy matrix (the paper's validation).
  int defined = 0;
  for (int i = 0; i < kNumAminoAcids; ++i) {
    for (int j = 0; j < kNumAminoAcids; ++j) {
      const double e = MjMatrix::standard().energy(static_cast<AminoAcid>(i),
                                                   static_cast<AminoAcid>(j));
      defined += std::isfinite(e);
    }
  }
  std::printf("Miyazawa-Jernigan matrix entries defined: %d / 400\n", defined);
  return 0;
}
