// Shared helpers for the reproduction bench harnesses.
//
// Each bench binary regenerates one table or figure of the paper and prints
// the paper's published values next to the measured ones.  Absolute numbers
// are not expected to match (the substrate is a simulator, not the authors'
// Eagle testbed and PDBbind data); the *shape* — who wins, by roughly what
// factor, where the group trends fall — is the reproduction target.  See
// EXPERIMENTS.md for the recorded outcomes.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "common/table.h"
#include "core/qdockbank.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qdb::bench {

/// Machine-readable bench output: writes BENCH_<name>.json with a flat
/// metric map so the perf trajectory can be tracked (diffed, plotted)
/// across PRs.  Values are emitted at full double precision.
///
/// After the caller's metrics (whose keys and order are byte-stable across
/// this change), every `span.<name>` histogram in the global registry is
/// appended as `span.<name>.count` / `span.<name>.total_us` — so a bench
/// that ran under obs spans publishes its span summary in the same file
/// without disturbing existing diff/plot tooling (new keys append only).
inline void emit_bench_json(const std::string& name,
                            const std::vector<std::pair<std::string, double>>& metrics) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "emit_bench_json: cannot write %s\n", path.c_str());
    return;
  }
  // Timestamp via <chrono>, not std::time(): the qdb_lint raw-time rule bans
  // time() repo-wide so it can never creep back in as an RNG seed.
  const long long unix_time = std::chrono::duration_cast<std::chrono::seconds>(
                                  std::chrono::system_clock::now().time_since_epoch())
                                  .count();
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"unix_time\": %lld", name.c_str(), unix_time);
  for (const auto& [key, value] : metrics) {
    std::fprintf(f, ",\n  \"%s\": %.17g", key.c_str(), value);
  }
  const obs::Snapshot snap = obs::MetricRegistry::global().snapshot();
  for (const obs::Snapshot::HistogramSample& h : snap.histograms) {
    if (h.name.rfind("span.", 0) != 0) continue;
    std::fprintf(f, ",\n  \"%s.count\": %.17g", h.name.c_str(),
                 static_cast<double>(h.count()));
    std::fprintf(f, ",\n  \"%s.total_us\": %.17g", h.name.c_str(),
                 static_cast<double>(h.total));
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

/// RAII trace session for a bench: starts recording on construction and, on
/// destruction, drains the session and prints the per-span summary table
/// (count / total / self time) below the bench's own output.  Benches that
/// also call emit_bench_json get the same spans in their JSON via the
/// registry mirror.
class ScopedBenchTrace {
 public:
  ScopedBenchTrace() { session_.start(); }
  ~ScopedBenchTrace() {
    session_.stop();
    if (!session_.events().empty()) {
      std::printf("\nspan summary:\n%s", session_.summary_table().c_str());
    }
  }
  ScopedBenchTrace(const ScopedBenchTrace&) = delete;
  ScopedBenchTrace& operator=(const ScopedBenchTrace&) = delete;

 private:
  obs::TraceSession session_;
};

inline void header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n\n");
}

/// Run the VQE stage for every entry of a group and print the table the
/// paper reports (Tables 1-3): qubits, depth, energies, exec time — the
/// measured values with the published ones alongside.
inline void run_group_table(Group g, const char* paper_table) {
  header(format("%s - %s group fragments (measured vs published)", paper_table,
                group_name(g)));

  const ScopedBenchTrace trace;
  Pipeline pipeline;
  Table t({"PDB", "Sequence", "Len", "Qubits", "Depth", "E_min", "E_max", "E_range",
           "Time(s)", "| pub E_min", "pub E_range", "pub Time(s)"});

  double ratio_sum = 0.0;
  int ratio_count = 0;
  for (const DatasetEntry* e : entries_in_group(g)) {
    const Prediction pred = pipeline.predict(*e, Method::QDock);
    const VqeResult& v = *pred.vqe;
    t.add_row({e->pdb_id, e->sequence, format("%d", e->length()),
               format("%d", v.allocation.qubits), format("%d", v.allocation.depth),
               format_fixed(v.lowest_energy, 1), format_fixed(v.highest_energy, 1),
               format_fixed(v.energy_range, 1), format_fixed(v.modeled_exec_time_s, 0),
               format("| %.1f", e->lowest_energy), format_fixed(e->energy_range, 1),
               format_fixed(e->exec_time_s, 0)});
    if (e->lowest_energy > 0) {
      ratio_sum += v.lowest_energy / e->lowest_energy;
      ++ratio_count;
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nmean measured/published lowest-energy ratio: %.3f "
              "(1.0 = exact scale match)\n",
              ratio_sum / ratio_count);
  std::printf("qubits and depth columns reproduce the published allocation exactly\n");
}

/// Print the per-entry scatter of Figures 2/3 (QDock vs a baseline) plus
/// the win-rate summary per group and overall.
inline void run_method_comparison(Method baseline, const char* figure,
                                  double paper_affinity_rate, double paper_rmsd_rate) {
  header(format("%s - QDock vs %s: affinity and RMSD per entry", figure,
                method_name(baseline)));

  const ScopedBenchTrace trace;
  Pipeline pipeline;
  const auto qd = pipeline.evaluate_all(Method::QDock);
  const auto base = pipeline.evaluate_all(baseline);

  Table t({"PDB", "Grp", "QDock aff", format("%s aff", method_name(baseline)),
           "QDock rmsd", format("%s rmsd", method_name(baseline)), "aff win", "rmsd win"});
  for (std::size_t i = 0; i < qd.size(); ++i) {
    t.add_row({qd[i].pdb_id, group_name(qd[i].group), format_fixed(qd[i].affinity, 2),
               format_fixed(base[i].affinity, 2), format_fixed(qd[i].rmsd, 2),
               format_fixed(base[i].rmsd, 2),
               qd[i].affinity < base[i].affinity ? "QDock" : method_name(baseline),
               qd[i].rmsd < base[i].rmsd ? "QDock" : method_name(baseline)});
  }
  std::printf("%s\n", t.to_string().c_str());

  const WinRates all = win_rates(qd, base);
  std::printf("overall: QDock wins affinity %.1f%% (paper: %.1f%%), RMSD %.1f%% "
              "(paper: %.1f%%) of %d entries\n",
              100.0 * all.affinity_rate(), paper_affinity_rate, 100.0 * all.rmsd_rate(),
              paper_rmsd_rate, all.entries);

  for (Group g : {Group::L, Group::M, Group::S}) {
    std::vector<Evaluation> qg, bg;
    for (std::size_t i = 0; i < qd.size(); ++i) {
      if (qd[i].group == g) {
        qg.push_back(qd[i]);
        bg.push_back(base[i]);
      }
    }
    const WinRates w = win_rates(qg, bg);
    std::printf("group %s: affinity %d/%d, RMSD %d/%d\n", group_name(g), w.affinity_wins,
                w.entries, w.rmsd_wins, w.entries);
  }
}

}  // namespace qdb::bench
