// Reproduces Table 3: S-group fragments (5-8 residues) — per-fragment
// qubits, transpiled depth, VQE energy statistics and execution time.
#include "bench_util.h"

int main() {
  qdb::bench::run_group_table(qdb::Group::S, "Table 3");
  return 0;
}
