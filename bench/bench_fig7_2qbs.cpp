// Reproduces Figure 7: RMSD-based structural comparison on the 2qbs
// fragment.  Paper: QDock 2.428 A vs AF3 4.234 A ("nearly twofold").
#include "bench_util.h"
#include "geom/kabsch.h"
#include "structure/secondary.h"
#include "structure/pdb.h"

int main() {
  using namespace qdb;
  bench::header("Figure 7 - 2qbs fragment: QDock vs AF3 structural accuracy");

  Pipeline pipeline;
  const DatasetEntry& entry = entry_by_id("2qbs");
  std::printf("fragment: \"%s\", residues %d-%d of chain A\n\n", entry.sequence,
              entry.residue_start, entry.residue_end);

  const Prediction qdock = pipeline.predict(entry, Method::QDock);
  const Prediction af3 = pipeline.predict(entry, Method::AF3);
  const Structure& ref = pipeline.reference(entry);

  const double rq = ca_rmsd(qdock.structure, ref);
  const double ra = ca_rmsd(af3.structure, ref);

  Table t({"Method", "Calpha RMSD (A)", "paper (A)"});
  t.add_row({"QDock", format_fixed(rq, 3), "2.428"});
  t.add_row({"AF3", format_fixed(ra, 3), "4.234"});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("measured AF3/QDock RMSD ratio: %.2fx (paper: ~1.74x, \"nearly twofold\")\n",
              ra / rq);

  // Per-residue deviation profile (the green/red colouring of Figure 7).
  const auto ref_cas = ref.ca_positions();
  const Superposition spq = superpose(qdock.structure.ca_positions(), ref_cas);
  const Superposition spa = superpose(af3.structure.ca_positions(), ref_cas);
  Table profile({"Residue", "QDock dev (A)", "AF3 dev (A)"});
  const auto q_cas = qdock.structure.ca_positions();
  const auto a_cas = af3.structure.ca_positions();
  for (std::size_t i = 0; i < ref_cas.size(); ++i) {
    profile.add_row({format("%d", entry.residue_start + static_cast<int>(i)),
                     format_fixed(spq.apply(q_cas[i]).distance(ref_cas[i]), 2),
                     format_fixed(spa.apply(a_cas[i]).distance(ref_cas[i]), 2)});
  }
  std::printf("per-residue deviation after superposition:\n%s\n", profile.to_string().c_str());

  // Secondary-structure strings (the paper discusses the helical segment
  // at residues 221-223).
  std::printf("secondary structure (H helix, E strand, C coil):\n");
  std::printf("  reference  %s\n", ss_string(assign_ss(ref)).c_str());
  std::printf("  QDock      %s\n", ss_string(assign_ss(qdock.structure)).c_str());
  std::printf("  AF3        %s\n\n", ss_string(assign_ss(af3.structure)).c_str());

  write_pdb_file(qdock.structure, "bench_artifacts/2qbs_qdock.pdb");
  write_pdb_file(af3.structure, "bench_artifacts/2qbs_af3.pdb");
  write_pdb_file(ref, "bench_artifacts/2qbs_reference.pdb");
  std::printf("wrote bench_artifacts/2qbs_{qdock,af3,reference}.pdb for visualisation\n");
  return 0;
}
