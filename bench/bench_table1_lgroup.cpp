// Reproduces Table 1: L-group fragments (13-14 residues) — per-fragment
// qubits, transpiled depth, VQE energy statistics and execution time.
#include "bench_util.h"

int main() {
  qdb::bench::run_group_table(qdb::Group::L, "Table 1");
  return 0;
}
