// Reproduces Table 4 (and the Figure 6 docking case study): average docking
// metrics for 4jpy, QDockBank vs AlphaFold3.
//
// Paper values: affinity -4.3 vs -3.9 kcal/mol; pose RMSD l.b. 1.4 vs 2.0;
// pose RMSD u.b. 1.9 vs 3.2.  Also writes the Figure 6 artifacts (receptor
// PDB plus the best docking pose) under ./bench_artifacts/.
#include "bench_util.h"
#include "structure/pdb.h"

int main() {
  using namespace qdb;
  bench::header("Table 4 - 4jpy docking case study: QDock vs AF3");

  Pipeline pipeline;
  const DatasetEntry& entry = entry_by_id("4jpy");

  const Prediction qdock = pipeline.predict(entry, Method::QDock);
  const Prediction af3 = pipeline.predict(entry, Method::AF3);
  const DockingResult dq = pipeline.dock_prediction(entry, qdock);
  const DockingResult da = pipeline.dock_prediction(entry, af3);

  Table t({"Metric", "QDockBank", "AlphaFold3", "| paper QDB", "paper AF3"});
  t.add_row({"Affinity (kcal/mol)", format_fixed(dq.mean_affinity, 2),
             format_fixed(da.mean_affinity, 2), "| -4.3", "-3.9"});
  t.add_row({"RMSD l.b. (A)", format_fixed(dq.rmsd_lb_mean, 2),
             format_fixed(da.rmsd_lb_mean, 2), "| 1.4", "2.0"});
  t.add_row({"RMSD u.b. (A)", format_fixed(dq.rmsd_ub_mean, 2),
             format_fixed(da.rmsd_ub_mean, 2), "| 1.9", "3.2"});
  std::printf("%s\n", t.to_string().c_str());

  const bool affinity_ok = dq.mean_affinity < da.mean_affinity;
  const bool lb_ok = dq.rmsd_lb_mean <= da.rmsd_lb_mean;
  const bool ub_ok = dq.rmsd_ub_mean <= da.rmsd_ub_mean;
  std::printf("shape check: QDock better affinity: %s, tighter l.b.: %s, tighter u.b.: %s\n",
              affinity_ok ? "yes" : "no", lb_ok ? "yes" : "no", ub_ok ? "yes" : "no");

  // Figure 6 artifacts: receptor and best pose for external visualisation.
  write_pdb_file(qdock.structure, "bench_artifacts/4jpy_qdock_receptor.pdb");
  const Ligand& lig = pipeline.ligand(entry);
  const auto coords = lig.conformation(dq.poses.front().pose);
  std::string pose_pdb = "REMARK  best docking pose for 4jpy (QDock receptor)\n";
  for (std::size_t i = 0; i < coords.size(); ++i) {
    pose_pdb += format("HETATM%5zu  %-3s LIG A 900    %8.3f%8.3f%8.3f  1.00  0.00          %2c\n",
                       i + 1, lig.atoms()[i].name.c_str(), coords[i].x, coords[i].y,
                       coords[i].z, lig.atoms()[i].element);
  }
  pose_pdb += "END\n";
  write_file("bench_artifacts/4jpy_best_pose.pdb", pose_pdb);
  std::printf("wrote bench_artifacts/4jpy_qdock_receptor.pdb and 4jpy_best_pose.pdb "
              "(Figure 6 visualisation inputs)\n");
  return 0;
}
