// Estimator ablation: CVaR tail fraction alpha inside the VQE loop.
// Folding-VQE literature (Robert et al. 2021) recommends small alpha —
// for a diagonal Hamiltonian the goal is one good bitstring, not a good
// average — with alpha = 1 recovering the plain mean estimator.
#include "bench_util.h"
#include "lattice/solver.h"
#include "vqe/vqe.h"

int main() {
  using namespace qdb;
  bench::header("Ablation - CVaR tail fraction alpha in the VQE estimator");

  Table t({"PDB", "alpha", "Best estimate", "Sampled E_min", "Gap to exact"});
  for (const char* id : {"2bok", "1gx8"}) {
    const DatasetEntry& entry = entry_by_id(id);
    const FoldingHamiltonian h = entry_hamiltonian(entry);
    const double exact = ExactSolver().solve(h).energy;

    for (double alpha : {0.02, 0.05, 0.1, 0.25, 1.0}) {
      VqeOptions opt;
      opt.cvar_alpha = alpha;
      opt.seed = 19;
      opt.run_id = entry.pdb_id;
      opt.max_evaluations = 70;
      opt.shots_per_eval = 256;
      opt.final_shots = 6000;
      opt.refine_bitstring = false;
      const VqeResult r = VqeDriver(h, opt).run();
      t.add_row({id, format_fixed(alpha, 2), format_fixed(r.best_cvar, 2),
                 format_fixed(r.sampled_min_energy, 2),
                 format_fixed(r.sampled_min_energy - exact, 2)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("shape: the optimised estimate tracks alpha directly (smaller tail =\n"
              "lower estimate), while the stage-2 sampled minimum is robust across\n"
              "alpha at this shot count — heavy sampling of a diagonal Hamiltonian\n"
              "forgives a mediocre mean, exactly the argument for CVaR-style\n"
              "objectives in folding VQE.\n");
  return 0;
}
