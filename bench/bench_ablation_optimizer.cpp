// Optimizer ablation: COBYLA (the paper's choice) against Nelder-Mead, SPSA
// and random search on the same CVaR-VQE objective and budget.
#include "bench_util.h"
#include "lattice/solver.h"
#include "optimize/cobyla.h"
#include "optimize/nelder_mead.h"
#include "optimize/random_search.h"
#include "optimize/spsa.h"
#include "quantum/ansatz.h"
#include "quantum/statevector.h"
#include "vqe/vqe.h"

int main() {
  using namespace qdb;
  bench::header("Ablation - classical optimizer choice inside the VQE loop");

  const DatasetEntry& entry = entry_by_id("2bok");
  const FoldingHamiltonian h = entry_hamiltonian(entry);
  const double exact = ExactSolver().solve(h).energy;
  std::printf("fragment %s: %d qubits, exact ground energy %.3f\n\n", entry.pdb_id,
              h.num_qubits(), exact);

  const EfficientSU2 ansatz(h.num_qubits(), 2);
  const NoiseModel noise = NoiseModel::eagle_r3();

  auto make_objective = [&](Rng& rng) {
    return [&](const std::vector<double>& params) {
      const Circuit noisy = noise_trajectory(ansatz.build(params), noise, rng);
      Statevector sv(h.num_qubits());
      sv.apply(noisy);
      auto shots = sv.sample(256, rng);
      apply_readout_error(shots, h.num_qubits(), noise, rng);
      std::vector<double> energies(shots.size());
      for (std::size_t i = 0; i < shots.size(); ++i) energies[i] = h.energy(shots[i]);
      return VqeDriver::cvar(std::move(energies), 0.1);
    };
  };

  Table t({"Optimizer", "Best CVaR", "Gap to exact", "Evaluations"});
  const Cobyla cobyla;
  const NelderMead nm;
  const Spsa spsa;
  const RandomSearch rs;
  const Optimizer* optimizers[] = {&cobyla, &nm, &spsa, &rs};
  for (const Optimizer* opt : optimizers) {
    Rng rng(11);
    Rng init_rng(22);
    const auto x0 = ansatz.initial_point(init_rng, 0.25);
    const auto objective = make_objective(rng);
    const OptimResult r = opt->minimize(objective, x0, 150);
    t.add_row({opt->name(), format_fixed(r.fx, 2), format_fixed(r.fx - exact, 2),
               format("%d", r.evaluations)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("the paper uses COBYLA; this ablation shows how the alternatives fare\n"
              "under the identical shot-noise budget.\n");
  return 0;
}
