// Reproduces Table 2: M-group fragments (9-12 residues) — per-fragment
// qubits, transpiled depth, VQE energy statistics and execution time.
#include "bench_util.h"

int main() {
  qdb::bench::run_group_table(qdb::Group::M, "Table 2");
  return 0;
}
