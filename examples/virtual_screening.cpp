// Virtual screening against a quantum-predicted pocket — the drug-discovery
// scenario motivating the paper's introduction (small-molecule inhibitors
// against protein active sites).
//
// Predicts one receptor fragment with the quantum pipeline, then runs the
// src/screen two-stage funnel over a seeded combinatorial ligand library:
// a precomputed receptor grid filters coarse poses cheaply, the survivors
// are rescored with the full Vina function, and a bounded heap keeps the
// ranked top K.  Published affinities always come from the full rescoring;
// the grid score is shown alongside as stage-1 provenance.
//
//   ./virtual_screening [pdb_id] [library_size] [top_k]   (defaults: 5nkc 512 10)
#include <algorithm>
#include <cstdio>
#include <string>

#include "core/qdockbank.h"
#include "screen/funnel.h"
#include "screen/library.h"

int main(int argc, char** argv) {
  using namespace qdb;
  const std::string id = argc > 1 ? argv[1] : "5nkc";
  const std::uint64_t library_size =
      argc > 2 ? static_cast<std::uint64_t>(std::max(1, std::atoi(argv[2]))) : 512;
  const int top_k = argc > 3 ? std::max(1, std::atoi(argv[3])) : 10;

  const DatasetEntry& entry = entry_by_id(id);
  Pipeline pipeline;

  std::printf("Predicting receptor %s (\"%s\") with the quantum pipeline...\n",
              entry.pdb_id, entry.sequence);
  const Prediction receptor = pipeline.predict(entry, Method::QDock);
  std::printf("prediction ready: %zu atoms, conformation energy %.2f\n\n",
              receptor.structure.num_atoms(), receptor.conformation_energy);

  screen::ScreenOptions opt;
  opt.library = {1, library_size};
  opt.top_k = top_k;

  std::printf("Preparing receptor grid and screening %llu library ligands "
              "(keep %.0f%%, top %d)...\n\n",
              static_cast<unsigned long long>(library_size),
              opt.stage1_keep * 100.0, top_k);
  const screen::PreparedReceptor prepared =
      screen::prepare_receptor(receptor.structure, opt);
  const screen::ScreenReport report = screen::run_screen(prepared, id, opt);

  std::printf("%5s %-28s %10s %10s %6s %9s\n", "rank", "ligand", "affinity",
              "stage-1", "atoms", "torsions");
  std::printf("%s\n", std::string(74, '-').c_str());
  int rank = 1;
  for (const screen::ScreenHit& h : report.hits) {
    std::printf("%5d %-28s %10.3f %10.3f %6d %9d\n", rank++, h.id.c_str(),
                h.affinity, h.stage1_score, h.num_atoms, h.num_torsions);
  }
  std::printf("\nscreened %llu ligands, %llu stage-1 survivors (keep %.3f)\n",
              static_cast<unsigned long long>(report.ligands_screened),
              static_cast<unsigned long long>(report.stage1_survivors),
              report.keep_rate());
  if (!report.hits.empty()) {
    const screen::ScreenHit& best = report.hits.front();
    const Ligand lig = screen::library_ligand(opt.library, best.index);
    std::printf("best binder: %s (%.3f kcal/mol, %d atoms) — reproducible "
                "from (seed=%llu, index=%llu) alone\n",
                best.id.c_str(), best.affinity, lig.num_atoms(),
                static_cast<unsigned long long>(opt.library.seed),
                static_cast<unsigned long long>(best.index));
  }
  return 0;
}
