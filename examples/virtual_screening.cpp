// Virtual screening against a quantum-predicted pocket — the drug-discovery
// scenario motivating the paper's introduction (small-molecule inhibitors
// against protein active sites).
//
// Predicts one receptor fragment with the quantum pipeline, then screens a
// panel of candidate ligands against it, ranking them by docking affinity
// (how a QDockBank structure is consumed by a downstream screening
// workflow, paper 7.1).
//
//   ./virtual_screening [pdb_id] [n_candidates]    (defaults: 5nkc 8)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/qdockbank.h"

int main(int argc, char** argv) {
  using namespace qdb;
  const std::string id = argc > 1 ? argv[1] : "5nkc";
  const int n_candidates = argc > 2 ? std::max(1, std::atoi(argv[2])) : 8;

  const DatasetEntry& entry = entry_by_id(id);
  Pipeline pipeline;

  std::printf("Predicting receptor %s (\"%s\") with the quantum pipeline...\n",
              entry.pdb_id, entry.sequence);
  const Prediction receptor = pipeline.predict(entry, Method::QDock);
  std::printf("prediction ready: %zu atoms, conformation energy %.2f\n\n",
              receptor.structure.num_atoms(), receptor.conformation_energy);

  // Candidate panel: the entry's own (native-like, imprinted) ligand plus
  // generic candidates generated from other seeds.
  struct Candidate {
    std::string name;
    Ligand ligand;
    double affinity = 0.0;
  };
  std::vector<Candidate> panel;
  panel.push_back({"native-like (" + id + ")", pipeline.ligand(entry), 0.0});
  for (int i = 1; i < n_candidates; ++i) {
    const std::string seed_name = format("candidate-%02d", i);
    panel.push_back({seed_name, generate_ligand(seed_name), 0.0});
  }

  std::printf("Screening %zu candidates (20-seed docking each)...\n\n", panel.size());
  for (Candidate& c : panel) {
    DockingParams params = pipeline.options().docking;
    params.seed = fnv1a(c.name);
    const DockingResult r = dock(receptor.structure, c.ligand, params);
    c.affinity = r.best_affinity;
  }
  std::sort(panel.begin(), panel.end(),
            [](const Candidate& a, const Candidate& b) { return a.affinity < b.affinity; });

  std::printf("%-24s %10s %7s %9s\n", "candidate", "affinity", "atoms", "torsions");
  std::printf("%s\n", std::string(54, '-').c_str());
  for (const Candidate& c : panel) {
    std::printf("%-24s %10.3f %7d %9d\n", c.name.c_str(), c.affinity,
                c.ligand.num_atoms(), c.ligand.num_torsions());
  }
  std::printf("\nBest binder: %s (%.3f kcal/mol)\n", panel.front().name.c_str(),
              panel.front().affinity);
  return 0;
}
