// Build a distributable QDockBank dataset tree (the paper's 4.2 layout):
//
//   <root>/<S|M|L>/<pdb_id>/structure.pdb
//   <root>/<S|M|L>/<pdb_id>/metadata.json
//   <root>/<S|M|L>/<pdb_id>/docking.json
//
//   ./dataset_build [root] [group|all]    (defaults: ./qdockbank_dataset S)
//
// Building only the S group by default keeps the example quick; pass "all"
// (ideally with QDB_FULL=1) to regenerate the full 55-entry dataset.
#include <cstdio>
#include <string>

#include "core/qdockbank.h"

int main(int argc, char** argv) {
  using namespace qdb;
  const std::string root = argc > 1 ? argv[1] : "./qdockbank_dataset";
  const std::string which = argc > 2 ? argv[2] : "S";

  Pipeline pipeline;

  std::vector<const DatasetEntry*> entries;
  if (which == "all") {
    for (const DatasetEntry& e : qdockbank_entries()) entries.push_back(&e);
  } else {
    const Group g = which == "L" ? Group::L : which == "M" ? Group::M : Group::S;
    entries = entries_in_group(g);
  }

  std::printf("Building %zu entries into %s ...\n\n", entries.size(), root.c_str());
  double rmsd_sum = 0.0, affinity_sum = 0.0;
  for (const DatasetEntry* e : entries) {
    const Prediction pred = pipeline.predict(*e, Method::QDock);
    const DockingResult docking = pipeline.dock_prediction(*e, pred);
    const double rmsd = ca_rmsd(pred.structure, pipeline.reference(*e));
    write_entry_files(root, *e, pred.structure, *pred.vqe, docking, rmsd);
    std::printf("  %s/%-6s rmsd %.3f A  affinity %.3f kcal/mol  (%s)\n",
                group_name(e->group()), e->pdb_id, rmsd, docking.best_affinity,
                entry_directory(root, *e).c_str());
    rmsd_sum += rmsd;
    affinity_sum += docking.best_affinity;
  }
  std::printf("\nDone: mean RMSD %.3f A, mean best affinity %.3f kcal/mol over %zu entries.\n",
              rmsd_sum / static_cast<double>(entries.size()),
              affinity_sum / static_cast<double>(entries.size()), entries.size());
  std::printf("Each entry folder holds structure.pdb, metadata.json, docking.json.\n");
  return 0;
}
