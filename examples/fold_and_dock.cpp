// End-to-end walkthrough of the paper's Figure 1 workflow on one fragment,
// exercising each public API layer explicitly:
//
//   sequence -> lattice Hamiltonian -> VQE (simulated Eagle) ->
//   bitstring -> conformation -> full-atom reconstruction -> protonation ->
//   PDB / PDBQT files -> docking -> metrics
//
//   ./fold_and_dock [pdb_id] [output_dir]     (defaults: 4jpy ./fold_out)
#include <cstdio>

#include "baseline/classical.h"
#include "core/qdockbank.h"
#include "structure/protonate.h"
#include "structure/reconstruct.h"

int main(int argc, char** argv) {
  using namespace qdb;
  const std::string id = argc > 1 ? argv[1] : "4jpy";
  const std::string out_dir = argc > 2 ? argv[2] : "./fold_out";

  const DatasetEntry& entry = entry_by_id(id);
  std::printf("== 1. Fragment ==\n%s: \"%s\" (%d residues, %s group)\n\n", entry.pdb_id,
              entry.sequence, entry.length(), group_name(entry.group()));

  // -- The folding Hamiltonian on the tetrahedral lattice (paper 4.3.1).
  const FoldingHamiltonian h = entry_hamiltonian(entry);
  std::printf("== 2. Hamiltonian ==\nqubits (compact turn encoding): %d\n", h.num_qubits());
  std::printf("contact-eligible residue pairs: %d\n\n", h.contact_pair_count());

  // -- VQE with CVaR + COBYLA on the simulated noisy backend (paper 4.3.2).
  VqeOptions vopt;
  vopt.seed = 42;
  vopt.run_id = entry.pdb_id;
  const VqeResult vqe = VqeDriver(h, vopt).run();
  std::printf("== 3. VQE ==\nbest CVaR estimate: %.3f after %d evaluations\n", vqe.best_cvar,
              vqe.evaluations);
  std::printf("stage-2 sampled energies: [%.3f, %.3f]\n", vqe.lowest_energy,
              vqe.highest_energy);
  std::printf("refined conformation energy: %.3f\n", vqe.best_energy);

  // Compare against the certified optimum.
  const SolveResult exact = ExactSolver().solve(h);
  std::printf("certified ground state energy: %.3f (VQE gap: %.3f)\n\n", exact.energy,
              vqe.best_energy - exact.energy);

  // -- Reconstruction to a docking-ready full-atom fragment (paper 4.3.3).
  const auto turns = decode_turns(vqe.best_bitstring, entry.length());
  Structure predicted = structure_from_turns(h, turns, entry.pdb_id, entry.residue_start);
  std::printf("== 4. Reconstruction ==\n%d residues, %zu atoms (with polar hydrogens)\n",
              predicted.num_residues(), predicted.num_atoms());

  write_pdb_file(predicted, out_dir + "/" + id + "_qdock.pdb");
  write_pdbqt_file(predicted, out_dir + "/" + id + "_qdock.pdbqt");
  std::printf("wrote %s/%s_qdock.pdb and .pdbqt\n\n", out_dir.c_str(), id.c_str());

  // -- Docking against the entry's imprinted ligand (paper 4.2 protocol).
  Pipeline pipeline;
  const Ligand& lig = pipeline.ligand(entry);
  std::printf("== 5. Docking ==\nligand %s: %d atoms, %d rotatable bonds\n",
              lig.name().c_str(), lig.num_atoms(), lig.num_torsions());

  Prediction pred;
  pred.method = Method::QDock;
  pred.structure = predicted;
  const DockingResult docking = pipeline.dock_prediction(entry, pred);
  std::printf("20-seed protocol: best %.3f kcal/mol, mean of run-bests %.3f\n",
              docking.best_affinity, docking.mean_affinity);
  std::printf("pose variability vs best pose: RMSD l.b. %.2f / u.b. %.2f A\n\n",
              docking.rmsd_lb_mean, docking.rmsd_ub_mean);

  // -- RMSD vs the reference (paper 6.1.1).
  const double rmsd = ca_rmsd(predicted, pipeline.reference(entry));
  std::printf("== 6. Structural accuracy ==\nCalpha RMSD vs reference: %.3f A\n", rmsd);
  std::printf("(paper: QDock RMSD for 2qbs was 2.428 A vs AF3's 4.234 A)\n");
  return 0;
}
