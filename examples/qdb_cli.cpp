// qdb — command-line interface over the QDockBank library.
//
//   qdb list [S|M|L]               list dataset entries
//   qdb info <pdb_id>              published Tables 1-3 metadata of an entry
//   qdb predict <pdb_id> [method] [out.pdb]
//                                  predict a fragment and optionally save it
//   qdb evaluate <pdb_id> [method] RMSD + docking metrics for one entry
//   qdb reference <pdb_id> <out.pdb>
//                                  write the reference structure
//   qdb batch [S|M|L|all] [flags]  resilient batch execution (ISSUE 2):
//       --account               use published exec times (no simulation)
//       --threads N             host-side parallelism (0 = all)
//       --evals N --shots N --final-shots N
//                               per-job VQE budgets (simulation mode)
//       --resume <path>         checkpoint file: written crash-consistently
//                               after every job; if it already exists,
//                               completed pdb_ids are skipped
//       --checkpoint <path>     alias for --resume
//       --max-attempts K        retries per degradation rung (default 3)
//       --fail-fast             abort after the batch drains if any job failed
//       --fault-rate P          inject transient faults with probability P
//                               per evaluation (deterministic per seed)
//       --fault-seed S          fault stream seed (default: $QDB_FAULT_SEED)
//       --limit N               run only the first N selected entries
//                               (CI-sized subsets for --trace runs)
//       --stage1-precision f32|f64
//                               dense-engine precision for stage-1 shot
//                               scoring (default f32; f64 reproduces the
//                               pre-fusion scalar engine bit-for-bit)
//   qdb ingest <dataset_root> <store_root>
//                                  ingest a §4.2 dataset tree into the
//                                  content-addressed store (dedup + index)
//   qdb serve <store_root> [flags] serve the store over HTTP/1.1 (ISSUE 4):
//       --port P                bind port (default 8080; 0 = ephemeral)
//       --host H                bind address (default 127.0.0.1)
//       --threads N             worker pool size (default 4)
//       --cache N               LRU blob-cache capacity in entries
//                               (default 256; 0 disables)
//       runs until SIGINT/SIGTERM, then shuts down cleanly and prints a
//       final metrics summary
//   qdb get <host> <port> <target>
//                                  one GET via the in-tree client; prints
//                                  the body (CI smoke checks)
//
// Global flags (any subcommand):
//   --trace <out.json>             record a TraceSession for the whole
//                                  command; writes Chrome trace_event JSON
//                                  (open in chrome://tracing or Perfetto)
//                                  with the span summary, the metric
//                                  registry, and a Prometheus rendering
//                                  embedded as extra top-level keys, and
//                                  prints the per-span summary table
//
// Methods: qdock (default), af2, af3, annealing, greedy, exact.
// Structured logging follows QDB_LOG=off|warn|info|debug (default warn).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "common/json.h"
#include "core/qdockbank.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "data/batch.h"
#include "serve/client.h"
#include "serve/server.h"
#include "store/store.h"
#include "structure/pdb.h"

namespace {

using namespace qdb;

Method parse_method(const std::string& s) {
  if (s == "qdock") return Method::QDock;
  if (s == "af2") return Method::AF2;
  if (s == "af3") return Method::AF3;
  if (s == "annealing") return Method::Annealing;
  if (s == "greedy") return Method::Greedy;
  if (s == "exact") return Method::Exact;
  throw Error("unknown method '" + s + "' (try qdock|af2|af3|annealing|greedy|exact)");
}

int cmd_list(int argc, char** argv) {
  std::printf("%-6s %-5s %-16s %-9s %s\n", "PDB", "Group", "Sequence", "Residues", "Qubits");
  for (const DatasetEntry& e : qdockbank_entries()) {
    if (argc > 2 && std::string(argv[2]) != group_name(e.group())) continue;
    std::printf("%-6s %-5s %-16s %4d-%-4d %d\n", e.pdb_id, group_name(e.group()),
                e.sequence, e.residue_start, e.residue_end, e.qubits);
  }
  return 0;
}

int cmd_info(const char* id) {
  const DatasetEntry& e = entry_by_id(id);
  std::printf("%s (%s group)\n", e.pdb_id, group_name(e.group()));
  std::printf("  sequence        %s (%d residues, %d-%d)\n", e.sequence, e.length(),
              e.residue_start, e.residue_end);
  std::printf("  logical qubits  %d (compact turn encoding)\n", encoding_qubits(e.length()));
  std::printf("published (paper Tables 1-3):\n");
  std::printf("  allocated qubits %d, transpiled depth %d\n", e.qubits, e.depth);
  std::printf("  energy min/max   %.3f / %.3f (range %.3f)\n", e.lowest_energy,
              e.highest_energy, e.energy_range);
  std::printf("  execution time   %.2f s\n", e.exec_time_s);
  return 0;
}

int cmd_predict(int argc, char** argv) {
  const DatasetEntry& e = entry_by_id(argv[2]);
  const Method m = argc > 3 ? parse_method(argv[3]) : Method::QDock;
  Pipeline pipeline;
  const Prediction p = pipeline.predict(e, m);
  std::printf("%s prediction of %s: %zu atoms, conformation energy %.3f\n",
              method_name(m), e.pdb_id, p.structure.num_atoms(), p.conformation_energy);
  if (p.vqe) {
    std::printf("VQE: %d evaluations, lowest estimate %.3f, modeled exec %.0f s\n",
                p.vqe->evaluations, p.vqe->lowest_energy, p.vqe->modeled_exec_time_s);
  }
  if (argc > 4) {
    write_pdb_file(p.structure, argv[4]);
    std::printf("wrote %s\n", argv[4]);
  }
  return 0;
}

int cmd_evaluate(int argc, char** argv) {
  const DatasetEntry& e = entry_by_id(argv[2]);
  const Method m = argc > 3 ? parse_method(argv[3]) : Method::QDock;
  Pipeline pipeline;
  const Evaluation ev = pipeline.evaluate(e, m);
  std::printf("%s on %s:\n", method_name(m), e.pdb_id);
  std::printf("  Calpha RMSD vs reference  %.3f A\n", ev.rmsd);
  std::printf("  best docking affinity     %.3f kcal/mol\n", ev.affinity);
  std::printf("  mean of run-best          %.3f kcal/mol\n", ev.mean_affinity);
  std::printf("  pose RMSD l.b./u.b.       %.2f / %.2f A\n", ev.pose_rmsd_lb, ev.pose_rmsd_ub);
  return 0;
}

int cmd_batch(int argc, char** argv) {
  BatchOptions opt;
  opt.run_vqe = true;
  opt.vqe.max_evaluations = 12;
  opt.vqe.shots_per_eval = 128;
  opt.vqe.final_shots = 1000;
  std::string group = "all";
  double fault_rate = 0.0;
  std::uint64_t fault_seed = fault_seed_from_env(1);
  long limit = -1;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) throw Error(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (arg == "--account") opt.run_vqe = false;
    else if (arg == "--threads") opt.threads = std::atoi(next("--threads"));
    else if (arg == "--evals") opt.vqe.max_evaluations = std::atoi(next("--evals"));
    else if (arg == "--shots") opt.vqe.shots_per_eval =
        static_cast<std::size_t>(std::atoll(next("--shots")));
    else if (arg == "--final-shots") opt.vqe.final_shots =
        static_cast<std::size_t>(std::atoll(next("--final-shots")));
    else if (arg == "--resume" || arg == "--checkpoint") opt.checkpoint_path = next("--resume");
    else if (arg == "--max-attempts") opt.retry.max_attempts = std::atoi(next("--max-attempts"));
    else if (arg == "--fail-fast") opt.fail_fast = true;
    else if (arg == "--limit") limit = std::atol(next("--limit"));
    else if (arg == "--stage1-precision") {
      const std::string prec = next("--stage1-precision");
      if (prec == "f32") opt.vqe.stage1_precision = Precision::f32;
      else if (prec == "f64") opt.vqe.stage1_precision = Precision::f64;
      else throw Error("--stage1-precision must be f32 or f64 (got '" + prec + "')");
    }
    else if (arg == "--fault-rate") fault_rate = std::atof(next("--fault-rate"));
    else if (arg == "--fault-seed") fault_seed =
        static_cast<std::uint64_t>(std::atoll(next("--fault-seed")));
    else if (arg == "S" || arg == "M" || arg == "L" || arg == "all") group = arg;
    else throw Error("unknown batch flag '" + arg + "'");
  }

  if (fault_rate > 0.0) {
    FaultInjector& fi = FaultInjector::instance();
    fi.set_seed(fault_seed);
    FaultSiteConfig cfg;
    cfg.probability = fault_rate;
    cfg.kind = FaultKind::Transient;
    if (opt.run_vqe) {
      fi.configure("vqe.stage1.evaluate", cfg);
      fi.configure("vqe.stage2.sample", cfg);
    } else {
      fi.configure("batch.account", cfg);
    }
  }

  std::vector<const DatasetEntry*> entries;
  for (const DatasetEntry& e : qdockbank_entries()) {
    if (group == "all" || group == group_name(e.group())) entries.push_back(&e);
  }
  if (limit >= 0 && static_cast<std::size_t>(limit) < entries.size()) {
    entries.resize(static_cast<std::size_t>(limit));
  }
  const BatchReport r = run_batch(entries, opt);

  std::printf("%-6s %-9s %-9s %-8s %-15s %12s %10s\n", "PDB", "Status", "Attempts",
              "Engine", "Degradation", "Device(s)", "Wait(s)");
  for (const BatchJobRecord& j : r.jobs) {
    std::printf("%-6s %-9s %-9d %-8s %-15s %12.1f %10.1f\n", j.pdb_id.c_str(),
                job_status_name(j.status), j.attempts,
                j.engine_used.empty() ? "-" : j.engine_used.c_str(),
                j.degradation.empty() ? "-" : j.degradation.c_str(), j.device_time_s,
                j.retry_wait_s);
    for (const std::string& line : j.failure_log) {
      std::printf("       | %s\n", line.c_str());
    }
  }
  std::printf("\n%zu jobs: %d ok, %d retried, %d degraded, %d failed "
              "(completion %.1f%%)\n",
              r.jobs.size(), r.count(JobStatus::Ok), r.count(JobStatus::Retried),
              r.count(JobStatus::Degraded), r.count(JobStatus::Failed),
              100.0 * r.completion_rate());
  std::printf("device time %.1f h, retry wait %.1f h, cost %.0f USD\n",
              r.total_device_hours(), r.total_retry_wait_s / 3600.0, r.total_cost_usd);
  for (const std::string& warn : r.checkpoint_warnings) {
    std::printf("warning: %s\n", warn.c_str());
  }
  if (!opt.checkpoint_path.empty()) {
    std::printf("checkpoint: %s\n", opt.checkpoint_path.c_str());
  }
  return r.count(JobStatus::Failed) == 0 ? 0 : 3;
}

int cmd_reference(char** argv) {
  const DatasetEntry& e = entry_by_id(argv[2]);
  const Structure ref = reference_structure(e);
  write_pdb_file(ref, argv[3]);
  std::printf("wrote reference structure of %s (%zu atoms) to %s\n", e.pdb_id,
              ref.num_atoms(), argv[3]);
  return 0;
}

int cmd_ingest(char** argv) {
  store::Store s(argv[3]);
  const store::IngestStats st = s.ingest_dataset(argv[2]);
  const store::StoreStats total = s.stats();
  std::printf("ingested %zu entries (%zu artifacts) from %s\n", st.entries_seen,
              st.artifacts_seen, argv[2]);
  std::printf("  new blobs        %zu (%llu bytes)\n", st.blobs_written,
              static_cast<unsigned long long>(st.bytes_written));
  std::printf("  deduplicated     %zu\n", st.blobs_deduplicated);
  std::printf("store now: %zu entries, %zu blobs, %llu blob bytes "
              "(%llu logical)\n",
              total.entries, total.blobs,
              static_cast<unsigned long long>(total.blob_bytes),
              static_cast<unsigned long long>(total.logical_bytes));
  std::printf("index: %s\n", s.index_path().c_str());
  return 0;
}

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

int cmd_serve(int argc, char** argv) {
  serve::ServeOptions opt;
  opt.port = 8080;
  std::size_t cache_capacity = 256;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) throw Error(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (arg == "--port") opt.port = static_cast<std::uint16_t>(std::atoi(next("--port")));
    else if (arg == "--host") opt.host = next("--host");
    else if (arg == "--threads") opt.threads = std::atoi(next("--threads"));
    else if (arg == "--cache") cache_capacity =
        static_cast<std::size_t>(std::atoll(next("--cache")));
    else throw Error("unknown serve flag '" + arg + "'");
  }

  store::Store s(argv[2], cache_capacity);
  if (s.entries().empty()) {
    throw Error(std::string("store '") + argv[2] +
                "' has no index — run `qdb ingest` first");
  }
  serve::DatasetServer server(s, opt);
  server.start();
  std::printf("qdb: serving %zu entries on http://%s:%u (%d workers, "
              "cache %zu)\n",
              s.entries().size(), opt.host.c_str(), server.port(), opt.threads,
              cache_capacity);
  std::fflush(stdout);

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();

  const serve::ServerMetrics& m = server.metrics();
  const std::uint64_t total = m.requests_total.load(std::memory_order_relaxed);
  std::printf("qdb: shut down cleanly after %llu requests "
              "(2xx %llu, 3xx %llu, 4xx %llu, 5xx %llu)\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(
                  m.responses_2xx.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  m.responses_3xx.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  m.responses_4xx.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  m.responses_5xx.load(std::memory_order_relaxed)));
  std::printf("  blob cache: %zu hits, %zu misses (hit rate %.1f%%)\n",
              s.cache().hits(), s.cache().misses(), 100.0 * s.cache().hit_rate());
  return 0;
}

int cmd_get(char** argv) {
  serve::HttpClient client(argv[2], static_cast<std::uint16_t>(std::atoi(argv[3])));
  const serve::HttpClientResponse r = client.get(argv[4]);
  std::fprintf(stderr, "HTTP %d\n", r.status);
  std::fputs(r.body.c_str(), stdout);
  if (!r.body.empty() && r.body.back() != '\n') std::printf("\n");
  return r.status < 400 ? 0 : 4;
}

int dispatch(int argc, char** argv) {
  const std::string cmd = argv[1];
  if (cmd == "list") return cmd_list(argc, argv);
  if (cmd == "batch") return cmd_batch(argc, argv);
  if (argc >= 3 && cmd == "info") return cmd_info(argv[2]);
  if (argc >= 3 && cmd == "predict") return cmd_predict(argc, argv);
  if (argc >= 3 && cmd == "evaluate") return cmd_evaluate(argc, argv);
  if (argc >= 4 && cmd == "reference") return cmd_reference(argv);
  if (argc >= 4 && cmd == "ingest") return cmd_ingest(argv);
  if (argc >= 3 && cmd == "serve") return cmd_serve(argc, argv);
  if (argc >= 5 && cmd == "get") return cmd_get(argv);
  std::fprintf(stderr, "qdb: bad arguments for '%s'\n", cmd.c_str());
  return 2;
}

/// Drain the trace session and write the --trace file: standard Chrome
/// trace_event JSON (viewers ignore extra top-level keys) carrying the
/// per-span summary, the full metric registry, and a Prometheus rendering —
/// one self-contained artifact per run, cross-checkable by qdb_trace_check.
void write_trace_file(obs::TraceSession& session, const std::string& path) {
  session.stop();
  Json doc = session.to_chrome_json();
  doc.set("summary", session.summary_json());
  doc.set("registry", obs::MetricRegistry::global().to_json());
  doc.set("prometheus", obs::MetricRegistry::global().to_prometheus());
  write_file_atomic(path, doc.dump());
  const std::string table = session.summary_table();
  std::fputs(table.c_str(), stdout);
  std::printf("trace: %zu events -> %s\n", session.events().size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // `--trace <path>` is a global flag: strip it before subcommand parsing so
  // every command (predict, batch, ingest, ...) can be traced uniformly.
  std::string trace_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "qdb: --trace needs an output path\n");
        return 2;
      }
      trace_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: qdb list [S|M|L] | info <id> | predict <id> [method] [out.pdb] "
                 "| evaluate <id> [method] | reference <id> <out.pdb> "
                 "| batch [S|M|L|all] [--account] [--resume <checkpoint>] "
                 "[--limit N] [flags] "
                 "| ingest <dataset_root> <store_root> "
                 "| serve <store_root> [--port P] [--host H] [--threads N] [--cache N] "
                 "| get <host> <port> <target>  [--trace out.json]\n");
    return 2;
  }
  try {
    obs::TraceSession session;
    if (!trace_path.empty()) session.start();
    const int rc = dispatch(argc, argv);
    if (!trace_path.empty()) write_trace_file(session, trace_path);
    return rc;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "qdb: %s\n", ex.what());
    return 1;
  }
}
