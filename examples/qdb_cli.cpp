// qdb — command-line interface over the QDockBank library.
//
//   qdb list [S|M|L]               list dataset entries
//   qdb info <pdb_id>              published Tables 1-3 metadata of an entry
//   qdb predict <pdb_id> [method] [out.pdb]
//                                  predict a fragment and optionally save it
//   qdb evaluate <pdb_id> [method] RMSD + docking metrics for one entry
//   qdb reference <pdb_id> <out.pdb>
//                                  write the reference structure
//   qdb batch [S|M|L|all] [flags]  resilient batch execution (ISSUE 2):
//       --account               use published exec times (no simulation)
//       --threads N             host-side parallelism (0 = all)
//       --evals N --shots N --final-shots N
//                               per-job VQE budgets (simulation mode)
//       --resume <path>         checkpoint file: written crash-consistently
//                               after every job; if it already exists,
//                               completed pdb_ids are skipped
//       --checkpoint <path>     alias for --resume
//       --max-attempts K        retries per degradation rung (default 3)
//       --fail-fast             abort after the batch drains if any job failed
//       --fault-rate P          inject transient faults with probability P
//                               per evaluation (deterministic per seed)
//       --fault-seed S          fault stream seed (default: $QDB_FAULT_SEED)
//       --limit N               run only the first N selected entries
//                               (CI-sized subsets for --trace runs)
//       --stage1-precision f32|f64
//                               dense-engine precision for stage-1 shot
//                               scoring (default f32; f64 reproduces the
//                               pre-fusion scalar engine bit-for-bit)
//   qdb ingest <dataset_root> <store_root>
//                                  ingest a §4.2 dataset tree into the
//                                  content-addressed store (dedup + index)
//   qdb screen <pdb_id> [flags]    two-stage virtual screening (ISSUE 9):
//       --library-seed S        library geometry seed (default 1)
//       --library-size N        ligands to screen (default 256)
//       --top-k K               ranked hits to publish (default 16)
//       --stage1-keep F         fraction surviving the grid filter (0.125)
//       --poses N --rescored M  stage-1 poses per ligand / exact rescores
//       --threads N             executor width (never changes the output)
//       --checkpoint <path>     chunk-level crash-consistent checkpoint
//       --resume                resume from --checkpoint if it exists
//       --stop-after N          stop after N chunks this run (exit 5;
//                               rerun with --resume to finish)
//       --out <path>            write the ranked-hit report JSON
//       --store <root>          ingest the receptor grid + report into a
//                               store and print their blob hashes
//       --server <host:port>    run remotely via POST /screen instead
//       --ingest                (remote) server ingests the report too
//   qdb serve <store_root> [flags] serve the store over HTTP/1.1 (ISSUE 4):
//       --port P                bind port (default 8080; 0 = ephemeral)
//       --host H                bind address (default 127.0.0.1)
//       --threads N             worker pool size (default 4)
//       --cache N               LRU blob-cache capacity in entries
//                               (default 256; 0 disables)
//       runs until SIGINT/SIGTERM, then shuts down cleanly and prints a
//       final metrics summary
//   qdb coordinate <results_store> [S|M|L|all] [batch flags] [flags]
//                                  lease coordinator for distributed batches
//                                  (ISSUE 7): serves POST /jobs/lease,
//                                  /jobs/{id}/heartbeat, /jobs/{id}/complete
//                                  and GET /jobs/status until the batch
//                                  drains or SIGINT/SIGTERM:
//       --port/--host/--serve-threads   as serve
//       --lease-ttl-ms T        lease deadline per grant/heartbeat (30000)
//       --max-lease-attempts K  grants per job before terminal Failed (8)
//       --journal <path>        crash-consistent state; re-run to resume
//       --report <path>         write the final report as a batch
//                               checkpoint (byte-comparable to --resume)
//   qdb work <host> <port> [batch flags] [flags]
//                                  worker loop against a coordinator; batch
//                                  flags must match (fingerprint-checked):
//       --worker-id W --poll-ms N --heartbeat-ms N --no-heartbeats
//       --max-request-attempts N
//   qdb get <host> <port> <target>
//                                  one GET via the in-tree client; prints
//                                  the body (CI smoke checks)
//
// Global flags (any subcommand):
//   --trace <out.json>             record a TraceSession for the whole
//                                  command; writes Chrome trace_event JSON
//                                  (open in chrome://tracing or Perfetto)
//                                  with the span summary, the metric
//                                  registry, and a Prometheus rendering
//                                  embedded as extra top-level keys, and
//                                  prints the per-span summary table
//
// Methods: qdock (default), af2, af3, annealing, greedy, exact.
// Structured logging follows QDB_LOG=off|warn|info|debug (default warn).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/error.h"
#include "common/fault.h"
#include "common/json.h"
#include "common/rng.h"
#include "core/qdockbank.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "data/batch.h"
#include "data/checkpoint.h"
#include "orchestrate/api.h"
#include "orchestrate/coordinator.h"
#include "orchestrate/worker.h"
#include "screen/funnel.h"
#include "serve/client.h"
#include "serve/screen_api.h"
#include "serve/server.h"
#include "serve/trace_api.h"
#include "store/store.h"
#include "structure/pdb.h"

namespace {

using namespace qdb;

Method parse_method(const std::string& s) {
  if (s == "qdock") return Method::QDock;
  if (s == "af2") return Method::AF2;
  if (s == "af3") return Method::AF3;
  if (s == "annealing") return Method::Annealing;
  if (s == "greedy") return Method::Greedy;
  if (s == "exact") return Method::Exact;
  throw Error("unknown method '" + s + "' (try qdock|af2|af3|annealing|greedy|exact)");
}

int cmd_list(int argc, char** argv) {
  std::printf("%-6s %-5s %-16s %-9s %s\n", "PDB", "Group", "Sequence", "Residues", "Qubits");
  for (const DatasetEntry& e : qdockbank_entries()) {
    if (argc > 2 && std::string(argv[2]) != group_name(e.group())) continue;
    std::printf("%-6s %-5s %-16s %4d-%-4d %d\n", e.pdb_id, group_name(e.group()),
                e.sequence, e.residue_start, e.residue_end, e.qubits);
  }
  return 0;
}

int cmd_info(const char* id) {
  const DatasetEntry& e = entry_by_id(id);
  std::printf("%s (%s group)\n", e.pdb_id, group_name(e.group()));
  std::printf("  sequence        %s (%d residues, %d-%d)\n", e.sequence, e.length(),
              e.residue_start, e.residue_end);
  std::printf("  logical qubits  %d (compact turn encoding)\n", encoding_qubits(e.length()));
  std::printf("published (paper Tables 1-3):\n");
  std::printf("  allocated qubits %d, transpiled depth %d\n", e.qubits, e.depth);
  std::printf("  energy min/max   %.3f / %.3f (range %.3f)\n", e.lowest_energy,
              e.highest_energy, e.energy_range);
  std::printf("  execution time   %.2f s\n", e.exec_time_s);
  return 0;
}

int cmd_predict(int argc, char** argv) {
  const DatasetEntry& e = entry_by_id(argv[2]);
  const Method m = argc > 3 ? parse_method(argv[3]) : Method::QDock;
  Pipeline pipeline;
  const Prediction p = pipeline.predict(e, m);
  std::printf("%s prediction of %s: %zu atoms, conformation energy %.3f\n",
              method_name(m), e.pdb_id, p.structure.num_atoms(), p.conformation_energy);
  if (p.vqe) {
    std::printf("VQE: %d evaluations, lowest estimate %.3f, modeled exec %.0f s\n",
                p.vqe->evaluations, p.vqe->lowest_energy, p.vqe->modeled_exec_time_s);
  }
  if (argc > 4) {
    write_pdb_file(p.structure, argv[4]);
    std::printf("wrote %s\n", argv[4]);
  }
  return 0;
}

int cmd_evaluate(int argc, char** argv) {
  const DatasetEntry& e = entry_by_id(argv[2]);
  const Method m = argc > 3 ? parse_method(argv[3]) : Method::QDock;
  Pipeline pipeline;
  const Evaluation ev = pipeline.evaluate(e, m);
  std::printf("%s on %s:\n", method_name(m), e.pdb_id);
  std::printf("  Calpha RMSD vs reference  %.3f A\n", ev.rmsd);
  std::printf("  best docking affinity     %.3f kcal/mol\n", ev.affinity);
  std::printf("  mean of run-best          %.3f kcal/mol\n", ev.mean_affinity);
  std::printf("  pose RMSD l.b./u.b.       %.2f / %.2f A\n", ev.pose_rmsd_lb, ev.pose_rmsd_ub);
  return 0;
}

/// Batch configuration shared by `batch` (serial executor), `coordinate`
/// (lease coordinator), and `work` (distributed worker).  All three parse
/// the same flags with the same defaults: byte-identity across the serial
/// and distributed paths starts with identical BatchOptions, and the
/// coordinator/worker fingerprint handshake rejects any drift.
struct BatchCliConfig {
  BatchOptions opt;
  std::string group = "all";
  double fault_rate = 0.0;
  std::uint64_t fault_seed = fault_seed_from_env(1);
  long limit = -1;

  BatchCliConfig() {
    opt.run_vqe = true;
    opt.vqe.max_evaluations = 12;
    opt.vqe.shots_per_eval = 128;
    opt.vqe.final_shots = 1000;
  }
};

/// Consume argv[i] (advancing i past any value) if it is a shared batch
/// flag; return false to let the caller try its own flags.
bool parse_batch_flag(BatchCliConfig& b, int argc, char** argv, int& i) {
  const std::string arg = argv[i];
  auto next = [&](const char* flag) -> const char* {
    if (i + 1 >= argc) throw Error(std::string(flag) + " needs a value");
    return argv[++i];
  };
  if (arg == "--account") b.opt.run_vqe = false;
  else if (arg == "--threads") b.opt.threads = std::atoi(next("--threads"));
  else if (arg == "--evals") b.opt.vqe.max_evaluations = std::atoi(next("--evals"));
  else if (arg == "--shots") b.opt.vqe.shots_per_eval =
      static_cast<std::size_t>(std::atoll(next("--shots")));
  else if (arg == "--final-shots") b.opt.vqe.final_shots =
      static_cast<std::size_t>(std::atoll(next("--final-shots")));
  else if (arg == "--max-attempts") b.opt.retry.max_attempts =
      std::atoi(next("--max-attempts"));
  else if (arg == "--fail-fast") b.opt.fail_fast = true;
  else if (arg == "--limit") b.limit = std::atol(next("--limit"));
  else if (arg == "--stage1-precision") {
    const std::string prec = next("--stage1-precision");
    if (prec == "f32") b.opt.vqe.stage1_precision = Precision::f32;
    else if (prec == "f64") b.opt.vqe.stage1_precision = Precision::f64;
    else throw Error("--stage1-precision must be f32 or f64 (got '" + prec + "')");
  }
  else if (arg == "--fault-rate") b.fault_rate = std::atof(next("--fault-rate"));
  else if (arg == "--fault-seed") b.fault_seed =
      static_cast<std::uint64_t>(std::atoll(next("--fault-seed")));
  else if (arg == "S" || arg == "M" || arg == "L" || arg == "all") b.group = arg;
  else return false;
  return true;
}

/// Arm the fault injector from the shared flags.  Both ends of a
/// distributed run must call this with identical flags — the injector
/// seed and site set are part of the options fingerprint.
void configure_fault_injection(const BatchCliConfig& b) {
  if (b.fault_rate <= 0.0) return;
  FaultInjector& fi = FaultInjector::instance();
  fi.set_seed(b.fault_seed);
  FaultSiteConfig cfg;
  cfg.probability = b.fault_rate;
  cfg.kind = FaultKind::Transient;
  if (b.opt.run_vqe) {
    fi.configure("vqe.stage1.evaluate", cfg);
    fi.configure("vqe.stage2.sample", cfg);
  } else {
    fi.configure("batch.account", cfg);
  }
}

std::vector<const DatasetEntry*> select_entries(const BatchCliConfig& b) {
  std::vector<const DatasetEntry*> entries;
  for (const DatasetEntry& e : qdockbank_entries()) {
    if (b.group == "all" || b.group == group_name(e.group())) entries.push_back(&e);
  }
  if (b.limit >= 0 && static_cast<std::size_t>(b.limit) < entries.size()) {
    entries.resize(static_cast<std::size_t>(b.limit));
  }
  return entries;
}

/// Print the per-job table + summary used by `batch` and `coordinate`.
void print_batch_report(const BatchReport& r) {
  std::printf("%-6s %-9s %-9s %-8s %-15s %12s %10s\n", "PDB", "Status", "Attempts",
              "Engine", "Degradation", "Device(s)", "Wait(s)");
  for (const BatchJobRecord& j : r.jobs) {
    std::printf("%-6s %-9s %-9d %-8s %-15s %12.1f %10.1f\n", j.pdb_id.c_str(),
                job_status_name(j.status), j.attempts,
                j.engine_used.empty() ? "-" : j.engine_used.c_str(),
                j.degradation.empty() ? "-" : j.degradation.c_str(), j.device_time_s,
                j.retry_wait_s);
    for (const std::string& line : j.failure_log) {
      std::printf("       | %s\n", line.c_str());
    }
  }
  std::printf("\n%zu jobs: %d ok, %d retried, %d degraded, %d failed "
              "(completion %.1f%%)\n",
              r.jobs.size(), r.count(JobStatus::Ok), r.count(JobStatus::Retried),
              r.count(JobStatus::Degraded), r.count(JobStatus::Failed),
              100.0 * r.completion_rate());
  std::printf("device time %.1f h, retry wait %.1f h, cost %.0f USD\n",
              r.total_device_hours(), r.total_retry_wait_s / 3600.0, r.total_cost_usd);
  for (const std::string& warn : r.checkpoint_warnings) {
    std::printf("warning: %s\n", warn.c_str());
  }
}

int cmd_batch(int argc, char** argv) {
  BatchCliConfig b;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) throw Error(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (parse_batch_flag(b, argc, argv, i)) continue;
    if (arg == "--resume" || arg == "--checkpoint") b.opt.checkpoint_path = next("--resume");
    else throw Error("unknown batch flag '" + arg + "'");
  }

  configure_fault_injection(b);
  const BatchReport r = run_batch(select_entries(b), b.opt);
  print_batch_report(r);
  if (!b.opt.checkpoint_path.empty()) {
    std::printf("checkpoint: %s\n", b.opt.checkpoint_path.c_str());
  }
  return r.count(JobStatus::Failed) == 0 ? 0 : 3;
}

int cmd_reference(char** argv) {
  const DatasetEntry& e = entry_by_id(argv[2]);
  const Structure ref = reference_structure(e);
  write_pdb_file(ref, argv[3]);
  std::printf("wrote reference structure of %s (%zu atoms) to %s\n", e.pdb_id,
              ref.num_atoms(), argv[3]);
  return 0;
}

int cmd_ingest(char** argv) {
  store::Store s(argv[3]);
  const store::IngestStats st = s.ingest_dataset(argv[2]);
  const store::StoreStats total = s.stats();
  std::printf("ingested %zu entries (%zu artifacts) from %s\n", st.entries_seen,
              st.artifacts_seen, argv[2]);
  std::printf("  new blobs        %zu (%llu bytes)\n", st.blobs_written,
              static_cast<unsigned long long>(st.bytes_written));
  std::printf("  deduplicated     %zu\n", st.blobs_deduplicated);
  std::printf("store now: %zu entries, %zu blobs, %llu blob bytes "
              "(%llu logical)\n",
              total.entries, total.blobs,
              static_cast<unsigned long long>(total.blob_bytes),
              static_cast<unsigned long long>(total.logical_bytes));
  std::printf("index: %s\n", s.index_path().c_str());
  return 0;
}

/// `qdb screen <pdb_id> [flags]` — run the two-stage screening funnel
/// locally against the entry's reference pocket, or remotely via POST
/// /screen when --server is given.  Flags that shape results are identical
/// in both modes; identical requests produce byte-identical reports.
int cmd_screen(int argc, char** argv) {
  const std::string pdb_id = argv[2];
  screen::ScreenOptions opt;
  std::string out_path, store_root, server;
  bool remote_ingest = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) throw Error(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (arg == "--library-seed") opt.library.seed =
        static_cast<std::uint64_t>(std::atoll(next("--library-seed")));
    else if (arg == "--library-size") opt.library.size =
        static_cast<std::uint64_t>(std::atoll(next("--library-size")));
    else if (arg == "--top-k") opt.top_k = std::atoi(next("--top-k"));
    else if (arg == "--stage1-keep") opt.stage1_keep = std::atof(next("--stage1-keep"));
    else if (arg == "--poses") opt.poses_per_ligand = std::atoi(next("--poses"));
    else if (arg == "--rescored") opt.poses_rescored = std::atoi(next("--rescored"));
    else if (arg == "--threads") opt.threads = std::atoi(next("--threads"));
    else if (arg == "--checkpoint") opt.checkpoint_path = next("--checkpoint");
    else if (arg == "--resume") opt.resume = true;
    else if (arg == "--stop-after") opt.stop_after_chunks = std::atoi(next("--stop-after"));
    else if (arg == "--chunk") opt.chunk_size =
        static_cast<std::uint64_t>(std::atoll(next("--chunk")));
    else if (arg == "--out") out_path = next("--out");
    else if (arg == "--store") store_root = next("--store");
    else if (arg == "--server") server = next("--server");
    else if (arg == "--ingest") remote_ingest = true;
    else throw Error("unknown screen flag '" + arg + "'");
  }

  if (!server.empty()) {
    const std::size_t colon = server.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= server.size()) {
      throw Error("--server needs host:port");
    }
    serve::HttpClient client(
        server.substr(0, colon),
        static_cast<std::uint16_t>(std::atoi(server.c_str() + colon + 1)));
    Json body = Json::object();
    body.set("pdb_id", pdb_id);
    body.set("library_seed", static_cast<std::int64_t>(opt.library.seed));
    body.set("library_size", static_cast<std::int64_t>(opt.library.size));
    body.set("top_k", opt.top_k);
    body.set("stage1_keep", opt.stage1_keep);
    body.set("poses_per_ligand", opt.poses_per_ligand);
    body.set("poses_rescored", opt.poses_rescored);
    if (remote_ingest) body.set("ingest", true);
    const serve::HttpClientResponse r = client.post("/screen", body.dump());
    if (!out_path.empty() && r.status < 400) {
      write_file_atomic(out_path, r.body);
      std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    }
    std::fputs(r.body.c_str(), stdout);
    if (!r.body.empty() && r.body.back() != '\n') std::printf("\n");
    return r.status < 400 ? 0 : 4;
  }

  const DatasetEntry& e = entry_by_id(pdb_id);
  const Structure receptor = reference_structure(e);
  const screen::PreparedReceptor prepared = screen::prepare_receptor(receptor, opt);
  const screen::ScreenReport report = screen::run_screen(prepared, pdb_id, opt);
  if (report.preempted) {
    std::printf("screen preempted after %llu/%llu chunks; checkpoint %s "
                "(rerun with --resume to finish)\n",
                static_cast<unsigned long long>(report.chunks_done),
                static_cast<unsigned long long>(report.chunks_total),
                opt.checkpoint_path.c_str());
    return 5;
  }

  const std::string report_bytes = screen::serialize_report(report);
  if (!out_path.empty()) {
    write_file_atomic(out_path, report_bytes);
    std::printf("report: %s\n", out_path.c_str());
  }
  if (!store_root.empty()) {
    store::Store s(store_root);
    std::printf("grid blob:   %s\n", s.put_blob(prepared.grid.serialize()).c_str());
    std::printf("report blob: %s\n", s.put_blob(report_bytes).c_str());
  }

  std::printf("screened %llu ligands against %s: %llu survived stage 1 "
              "(keep rate %.3f), top %zu hits\n",
              static_cast<unsigned long long>(report.ligands_screened),
              pdb_id.c_str(),
              static_cast<unsigned long long>(report.stage1_survivors),
              report.keep_rate(), report.hits.size());
  std::printf("%-4s %-28s %12s %12s %6s %5s\n", "Rank", "Ligand", "Stage1",
              "Affinity", "Atoms", "Tors");
  for (std::size_t i = 0; i < report.hits.size(); ++i) {
    const screen::ScreenHit& h = report.hits[i];
    std::printf("%-4zu %-28s %12.3f %12.3f %6d %5d\n", i + 1, h.id.c_str(),
                h.stage1_score, h.affinity, h.num_atoms, h.num_torsions);
  }
  return 0;
}

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

int cmd_serve(int argc, char** argv) {
  serve::ServeOptions opt;
  opt.port = 8080;
  std::size_t cache_capacity = 256;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) throw Error(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (arg == "--port") opt.port = static_cast<std::uint16_t>(std::atoi(next("--port")));
    else if (arg == "--host") opt.host = next("--host");
    else if (arg == "--threads") opt.threads = std::atoi(next("--threads"));
    else if (arg == "--cache") cache_capacity =
        static_cast<std::size_t>(std::atoll(next("--cache")));
    else throw Error("unknown serve flag '" + arg + "'");
  }

  store::Store s(argv[2], cache_capacity);
  if (s.entries().empty()) {
    throw Error(std::string("store '") + argv[2] +
                "' has no index — run `qdb ingest` first");
  }
  serve::DatasetServer server(s, opt);
  serve::ScreenService screen_service(s);
  serve::attach_screen_api(server, screen_service);
  serve::attach_trace_api(server, s);
  server.start();
  std::printf("qdb: serving %zu entries on http://%s:%u (%d workers, "
              "cache %zu)\n",
              s.entries().size(), opt.host.c_str(), server.port(), opt.threads,
              cache_capacity);
  std::fflush(stdout);

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();

  const serve::ServerMetrics& m = server.metrics();
  const std::uint64_t total = m.requests_total.load(std::memory_order_relaxed);
  std::printf("qdb: shut down cleanly after %llu requests "
              "(2xx %llu, 3xx %llu, 4xx %llu, 5xx %llu)\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(
                  m.responses_2xx.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  m.responses_3xx.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  m.responses_4xx.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  m.responses_5xx.load(std::memory_order_relaxed)));
  std::printf("  blob cache: %zu hits, %zu misses (hit rate %.1f%%)\n",
              s.cache().hits(), s.cache().misses(), 100.0 * s.cache().hit_rate());
  return 0;
}

/// `qdb coordinate <results_store> [group] [batch flags] [flags]` — run the
/// lease coordinator (ISSUE 7): serve the job API until the batch drains or
/// SIGINT/SIGTERM.  With --journal the state survives a kill; re-running
/// the same command resumes.  Accepted results are ingested into
/// <results_store> as content-addressed blobs.
int cmd_coordinate(int argc, char** argv) {
  BatchCliConfig b;
  serve::ServeOptions serve_opt;
  serve_opt.port = 8080;
  orchestrate::CoordinatorOptions copt;
  std::string report_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) throw Error(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (parse_batch_flag(b, argc, argv, i)) continue;
    if (arg == "--port") serve_opt.port =
        static_cast<std::uint16_t>(std::atoi(next("--port")));
    else if (arg == "--host") serve_opt.host = next("--host");
    else if (arg == "--serve-threads") serve_opt.threads =
        std::atoi(next("--serve-threads"));
    else if (arg == "--lease-ttl-ms") copt.lease_ttl_ms =
        static_cast<std::uint64_t>(std::atoll(next("--lease-ttl-ms")));
    else if (arg == "--max-lease-attempts") copt.max_lease_attempts =
        std::atoi(next("--max-lease-attempts"));
    else if (arg == "--journal") copt.journal_path = next("--journal");
    else if (arg == "--report") report_path = next("--report");
    else throw Error("unknown coordinate flag '" + arg + "'");
  }

  configure_fault_injection(b);
  copt.batch = b.opt;
  store::Store results(argv[2]);
  copt.results = &results;
  orchestrate::Coordinator coordinator(select_entries(b), copt);

  serve::DatasetServer server(results, serve_opt);
  orchestrate::attach_job_api(server, coordinator);
  serve::attach_trace_api(server, results);
  server.start();
  std::printf("qdb: coordinating %zu jobs on http://%s:%u "
              "(ttl %llu ms, %d lease attempts, fingerprint %016llx)\n",
              coordinator.jobs().size(), serve_opt.host.c_str(), server.port(),
              static_cast<unsigned long long>(copt.lease_ttl_ms),
              copt.max_lease_attempts,
              static_cast<unsigned long long>(coordinator.options_fingerprint()));
  if (!copt.journal_path.empty()) {
    std::printf("qdb: journal %s (kill + re-run to resume)\n",
                copt.journal_path.c_str());
  }
  std::fflush(stdout);

  g_stop = 0;
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  while (!g_stop && !coordinator.drained()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();

  const Json status = coordinator.status_json();
  if (!coordinator.drained()) {
    std::printf("qdb: interrupted before drain: %s\n",
                status.at("states").dump(-1).c_str());
    return copt.journal_path.empty() ? 130 : 0;
  }

  const BatchReport r = coordinator.report();
  print_batch_report(r);
  const orchestrate::CoordinatorCounters c = coordinator.counters();
  std::printf("leases %llu (reassigned %llu, expired %llu), completions %llu "
              "(duplicate %llu, stale %llu)\n",
              static_cast<unsigned long long>(c.leases_granted),
              static_cast<unsigned long long>(c.reassignments),
              static_cast<unsigned long long>(c.lease_expiries),
              static_cast<unsigned long long>(c.completions),
              static_cast<unsigned long long>(c.duplicate_completions),
              static_cast<unsigned long long>(c.stale_completions));
  if (!report_path.empty()) {
    // Same format as a serial `batch --resume` checkpoint: the two files
    // are byte-comparable (the CI chaos job diffs them with cmp).
    save_batch_checkpoint(report_path, r, batch_options_fingerprint(b.opt));
    std::printf("report: %s\n", report_path.c_str());
  }
  return r.count(JobStatus::Failed) == 0 ? 0 : 3;
}

/// `qdb work <host> <port> [batch flags] [flags]` — one worker loop against
/// a running coordinator.  Batch flags (and fault flags) must match the
/// coordinator's or the worker refuses the fingerprint handshake.
int cmd_work(int argc, char** argv) {
  BatchCliConfig b;
  orchestrate::WorkerOptions wopt;
  wopt.host = argv[2];
  wopt.port = static_cast<std::uint16_t>(std::atoi(argv[3]));
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) throw Error(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (parse_batch_flag(b, argc, argv, i)) continue;
    if (arg == "--worker-id") wopt.worker_id = next("--worker-id");
    else if (arg == "--poll-ms") wopt.poll_interval_ms =
        static_cast<std::uint64_t>(std::atoll(next("--poll-ms")));
    else if (arg == "--heartbeat-ms") wopt.heartbeat_interval_ms =
        static_cast<std::uint64_t>(std::atoll(next("--heartbeat-ms")));
    else if (arg == "--no-heartbeats") wopt.heartbeats = false;
    else if (arg == "--max-request-attempts") wopt.max_request_attempts =
        std::atoi(next("--max-request-attempts"));
    else throw Error("unknown work flag '" + arg + "'");
  }

  configure_fault_injection(b);
  wopt.batch = b.opt;
  const orchestrate::WorkerStats stats = orchestrate::run_worker(wopt);
  std::printf("worker %s: %d leases (%d dropped), %d executed, %d crashes, "
              "%d accepted, %d duplicate acks, %d abandoned%s\n",
              wopt.worker_id.c_str(), stats.leases_received,
              stats.leases_dropped, stats.jobs_executed, stats.crashes,
              stats.completions_accepted, stats.duplicate_acks,
              stats.completions_abandoned,
              stats.aborted_io ? " [aborted: coordinator unreachable]" : "");
  return stats.aborted_io ? 4 : 0;
}

int cmd_get(char** argv) {
  serve::HttpClient client(argv[2], static_cast<std::uint16_t>(std::atoi(argv[3])));
  const serve::HttpClientResponse r = client.get(argv[4]);
  std::fprintf(stderr, "HTTP %d\n", r.status);
  std::fputs(r.body.c_str(), stdout);
  if (!r.body.empty() && r.body.back() != '\n') std::printf("\n");
  return r.status < 400 ? 0 : 4;
}

int dispatch(int argc, char** argv) {
  const std::string cmd = argv[1];
  if (cmd == "list") return cmd_list(argc, argv);
  if (cmd == "batch") return cmd_batch(argc, argv);
  if (argc >= 3 && cmd == "info") return cmd_info(argv[2]);
  if (argc >= 3 && cmd == "predict") return cmd_predict(argc, argv);
  if (argc >= 3 && cmd == "evaluate") return cmd_evaluate(argc, argv);
  if (argc >= 4 && cmd == "reference") return cmd_reference(argv);
  if (argc >= 4 && cmd == "ingest") return cmd_ingest(argv);
  if (argc >= 3 && cmd == "screen") return cmd_screen(argc, argv);
  if (argc >= 3 && cmd == "serve") return cmd_serve(argc, argv);
  if (argc >= 3 && cmd == "coordinate") return cmd_coordinate(argc, argv);
  if (argc >= 4 && cmd == "work") return cmd_work(argc, argv);
  if (argc >= 5 && cmd == "get") return cmd_get(argv);
  std::fprintf(stderr, "qdb: bad arguments for '%s'\n", cmd.c_str());
  return 2;
}

/// Drain the trace session and write the --trace file: standard Chrome
/// trace_event JSON (viewers ignore extra top-level keys) carrying the
/// per-span summary, the full metric registry, and a Prometheus rendering —
/// one self-contained artifact per run, cross-checkable by qdb_trace_check.
void write_trace_file(obs::TraceSession& session, const std::string& path) {
  session.stop();
  Json doc = session.to_chrome_json();
  doc.set("summary", session.summary_json());
  doc.set("registry", obs::MetricRegistry::global().to_json());
  doc.set("prometheus", obs::MetricRegistry::global().to_prometheus());
  write_file_atomic(path, doc.dump());
  const std::string table = session.summary_table();
  std::fputs(table.c_str(), stdout);
  std::printf("trace: %zu events -> %s\n", session.events().size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // `--trace <path>` is a global flag: strip it before subcommand parsing so
  // every command (predict, batch, ingest, ...) can be traced uniformly.
  std::string trace_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "qdb: --trace needs an output path\n");
        return 2;
      }
      trace_path = argv[++i];
    } else {
      args.push_back(argv[i]);
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: qdb list [S|M|L] | info <id> | predict <id> [method] [out.pdb] "
                 "| evaluate <id> [method] | reference <id> <out.pdb> "
                 "| batch [S|M|L|all] [--account] [--resume <checkpoint>] "
                 "[--limit N] [flags] "
                 "| ingest <dataset_root> <store_root> "
                 "| screen <pdb_id> [--library-seed S] [--library-size N] [--top-k K] "
                 "[--stage1-keep F] [--checkpoint C --resume] [--server host:port] [flags] "
                 "| serve <store_root> [--port P] [--host H] [--threads N] [--cache N] "
                 "| coordinate <results_store> [group] [batch flags] [--port P] "
                 "[--lease-ttl-ms T] [--max-lease-attempts K] [--journal J] [--report R] "
                 "| work <host> <port> [batch flags] [--worker-id W] "
                 "| get <host> <port> <target>  [--trace out.json]\n");
    return 2;
  }
  // Distributed-tracing identity (ISSUE 10).  The process root context
  // derives from the command line — the same doctrine as every other seed in
  // the repo — so a re-run of the identical command produces identical trace
  // and span ids, and two processes in a coordinator/worker pair (different
  // commands) get distinct trace ids.  QDB_FLIGHT_DUMP arms the flight
  // recorder's crash dump: any contract violation writes the last ring of
  // span/log records there before the exception propagates.
  std::uint64_t ctx_seed = fnv1a("qdb_cli");
  for (int i = 1; i < argc; ++i) ctx_seed = seed_combine(ctx_seed, fnv1a(argv[i]));
  obs::set_process_root_context(obs::derive_root_context(ctx_seed));
  if (const char* flight_path = std::getenv("QDB_FLIGHT_DUMP");
      flight_path != nullptr && *flight_path != '\0') {
    obs::arm_flight_crash_dump(flight_path);
  }
  try {
    obs::TraceSession session;
    session.set_process(static_cast<int>(::getpid()),
                        argc >= 2 ? std::string("qdb ") + argv[1] : "qdb");
    if (!trace_path.empty()) session.start();
    const int rc = dispatch(argc, argv);
    if (!trace_path.empty()) write_trace_file(session, trace_path);
    return rc;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "qdb: %s\n", ex.what());
    return 1;
  }
}
