// qdb — command-line interface over the QDockBank library.
//
//   qdb list [S|M|L]               list dataset entries
//   qdb info <pdb_id>              published Tables 1-3 metadata of an entry
//   qdb predict <pdb_id> [method] [out.pdb]
//                                  predict a fragment and optionally save it
//   qdb evaluate <pdb_id> [method] RMSD + docking metrics for one entry
//   qdb reference <pdb_id> <out.pdb>
//                                  write the reference structure
//
// Methods: qdock (default), af2, af3, annealing, greedy, exact.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/error.h"
#include "core/qdockbank.h"
#include "structure/pdb.h"

namespace {

using namespace qdb;

Method parse_method(const std::string& s) {
  if (s == "qdock") return Method::QDock;
  if (s == "af2") return Method::AF2;
  if (s == "af3") return Method::AF3;
  if (s == "annealing") return Method::Annealing;
  if (s == "greedy") return Method::Greedy;
  if (s == "exact") return Method::Exact;
  throw Error("unknown method '" + s + "' (try qdock|af2|af3|annealing|greedy|exact)");
}

int cmd_list(int argc, char** argv) {
  std::printf("%-6s %-5s %-16s %-9s %s\n", "PDB", "Group", "Sequence", "Residues", "Qubits");
  for (const DatasetEntry& e : qdockbank_entries()) {
    if (argc > 2 && std::string(argv[2]) != group_name(e.group())) continue;
    std::printf("%-6s %-5s %-16s %4d-%-4d %d\n", e.pdb_id, group_name(e.group()),
                e.sequence, e.residue_start, e.residue_end, e.qubits);
  }
  return 0;
}

int cmd_info(const char* id) {
  const DatasetEntry& e = entry_by_id(id);
  std::printf("%s (%s group)\n", e.pdb_id, group_name(e.group()));
  std::printf("  sequence        %s (%d residues, %d-%d)\n", e.sequence, e.length(),
              e.residue_start, e.residue_end);
  std::printf("  logical qubits  %d (compact turn encoding)\n", encoding_qubits(e.length()));
  std::printf("published (paper Tables 1-3):\n");
  std::printf("  allocated qubits %d, transpiled depth %d\n", e.qubits, e.depth);
  std::printf("  energy min/max   %.3f / %.3f (range %.3f)\n", e.lowest_energy,
              e.highest_energy, e.energy_range);
  std::printf("  execution time   %.2f s\n", e.exec_time_s);
  return 0;
}

int cmd_predict(int argc, char** argv) {
  const DatasetEntry& e = entry_by_id(argv[2]);
  const Method m = argc > 3 ? parse_method(argv[3]) : Method::QDock;
  Pipeline pipeline;
  const Prediction p = pipeline.predict(e, m);
  std::printf("%s prediction of %s: %zu atoms, conformation energy %.3f\n",
              method_name(m), e.pdb_id, p.structure.num_atoms(), p.conformation_energy);
  if (p.vqe) {
    std::printf("VQE: %d evaluations, lowest estimate %.3f, modeled exec %.0f s\n",
                p.vqe->evaluations, p.vqe->lowest_energy, p.vqe->modeled_exec_time_s);
  }
  if (argc > 4) {
    write_pdb_file(p.structure, argv[4]);
    std::printf("wrote %s\n", argv[4]);
  }
  return 0;
}

int cmd_evaluate(int argc, char** argv) {
  const DatasetEntry& e = entry_by_id(argv[2]);
  const Method m = argc > 3 ? parse_method(argv[3]) : Method::QDock;
  Pipeline pipeline;
  const Evaluation ev = pipeline.evaluate(e, m);
  std::printf("%s on %s:\n", method_name(m), e.pdb_id);
  std::printf("  Calpha RMSD vs reference  %.3f A\n", ev.rmsd);
  std::printf("  best docking affinity     %.3f kcal/mol\n", ev.affinity);
  std::printf("  mean of run-best          %.3f kcal/mol\n", ev.mean_affinity);
  std::printf("  pose RMSD l.b./u.b.       %.2f / %.2f A\n", ev.pose_rmsd_lb, ev.pose_rmsd_ub);
  return 0;
}

int cmd_reference(char** argv) {
  const DatasetEntry& e = entry_by_id(argv[2]);
  const Structure ref = reference_structure(e);
  write_pdb_file(ref, argv[3]);
  std::printf("wrote reference structure of %s (%zu atoms) to %s\n", e.pdb_id,
              ref.num_atoms(), argv[3]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: qdb list [S|M|L] | info <id> | predict <id> [method] [out.pdb] "
                 "| evaluate <id> [method] | reference <id> <out.pdb>\n");
    return 2;
  }
  try {
    const std::string cmd = argv[1];
    if (cmd == "list") return cmd_list(argc, argv);
    if (argc >= 3 && cmd == "info") return cmd_info(argv[2]);
    if (argc >= 3 && cmd == "predict") return cmd_predict(argc, argv);
    if (argc >= 3 && cmd == "evaluate") return cmd_evaluate(argc, argv);
    if (argc >= 4 && cmd == "reference") return cmd_reference(argv);
    std::fprintf(stderr, "qdb: bad arguments for '%s'\n", cmd.c_str());
    return 2;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "qdb: %s\n", ex.what());
    return 1;
  }
}
