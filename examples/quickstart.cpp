// Quickstart: predict one QDockBank fragment with the quantum pipeline and
// evaluate it the way the paper does (Calpha RMSD vs the reference and
// docking affinity against the entry's ligand).
//
//   ./quickstart [pdb_id]        (default: 2bok)
#include <cstdio>

#include "core/qdockbank.h"

int main(int argc, char** argv) {
  using namespace qdb;
  const std::string id = argc > 1 ? argv[1] : "2bok";

  const DatasetEntry& entry = entry_by_id(id);
  std::printf("QDockBank quickstart: %s (%s group, \"%s\", residues %d-%d)\n",
              entry.pdb_id, group_name(entry.group()), entry.sequence,
              entry.residue_start, entry.residue_end);

  Pipeline pipeline;  // bench profile unless QDB_FULL=1

  // Quantum prediction: lattice encoding -> VQE on the simulated Eagle
  // backend -> reconstruction.
  const Prediction pred = pipeline.predict(entry, Method::QDock);
  const VqeResult& vqe = *pred.vqe;
  std::printf("\nVQE run:\n");
  std::printf("  logical qubits     %d (allocated on Eagle: %d, depth %d)\n",
              vqe.logical_qubits, vqe.allocation.qubits, vqe.allocation.depth);
  std::printf("  evaluations        %d (COBYLA, CVaR estimator)\n", vqe.evaluations);
  std::printf("  sampled energy     min %.3f   max %.3f   range %.3f\n", vqe.lowest_energy,
              vqe.highest_energy, vqe.energy_range);
  std::printf("  modeled exec time  %.0f s (paper reports %.2f s)\n",
              vqe.modeled_exec_time_s, entry.exec_time_s);

  // Evaluation: the paper's two headline metrics.
  const Evaluation ev = pipeline.evaluate(entry, Method::QDock);
  std::printf("\nEvaluation vs reference:\n");
  std::printf("  Calpha RMSD        %.3f A\n", ev.rmsd);
  std::printf("  best affinity      %.3f kcal/mol (mean over runs %.3f)\n", ev.affinity,
              ev.mean_affinity);
  std::printf("  pose RMSD l.b/u.b  %.2f / %.2f A\n", ev.pose_rmsd_lb, ev.pose_rmsd_ub);

  // Compare against the AlphaFold3 surrogate on the same entry.
  const Evaluation af3 = pipeline.evaluate(entry, Method::AF3);
  std::printf("\nAF3 surrogate on the same fragment: RMSD %.3f A, affinity %.3f kcal/mol\n",
              af3.rmsd, af3.affinity);
  std::printf("QDock %s on RMSD, %s on affinity.\n",
              ev.rmsd < af3.rmsd ? "wins" : "loses",
              ev.affinity < af3.affinity ? "wins" : "loses");
  return 0;
}
