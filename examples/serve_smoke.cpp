// serve_smoke — end-to-end smoke test of the dataset service (ISSUE 4).
//
//   ./serve_smoke [workdir]
//
// Builds a synthetic 55-entry dataset root (real §4.2 schema via the
// dataset_io writers, synthetic numbers so it takes milliseconds instead of
// re-running VQE), ingests it into a content-addressed store twice (the
// second pass must dedup everything and leave the index byte-identical),
// starts the HTTP server on an ephemeral port, and drives the full endpoint
// matrix through the in-tree client: /healthz, /metrics, /entries with
// filters, per-entry summaries, all three artifacts, ETag/If-None-Match 304
// handling, 404s, and strict 400s.  Exits 0 and prints PASS only if every
// check holds and the server shuts down cleanly.
//
// The CI serve-smoke job runs this binary under both ASan and TSan; when a
// workdir is given the dataset and store are left behind so the job can
// point `qdb_cli serve` at the same store afterwards.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "data/dataset_io.h"
#include "data/registry.h"
#include "dock/dock.h"
#include "serve/client.h"
#include "serve/server.h"
#include "store/store.h"
#include "vqe/vqe.h"

namespace {

using namespace qdb;

int g_checks = 0;

#define SMOKE_CHECK(cond, what)                                         \
  do {                                                                  \
    ++g_checks;                                                         \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "serve_smoke: FAIL at %s:%d: %s\n", __FILE__, \
                   __LINE__, what);                                     \
      return 1;                                                         \
    }                                                                   \
  } while (0)

/// Deterministic synthetic per-entry documents: real writers, fake numbers.
void write_synthetic_entry(const std::string& root, const DatasetEntry& e) {
  VqeResult vqe;
  vqe.allocation.sequence_length = e.length();
  vqe.allocation.qubits = e.qubits;
  vqe.allocation.depth = e.depth;
  vqe.logical_qubits = 2 * (e.length() - 3);
  vqe.lowest_energy = e.lowest_energy;
  vqe.highest_energy = e.highest_energy;
  vqe.energy_range = e.energy_range;
  vqe.evaluations = 12;
  vqe.total_shots = 12 * 128 + 1000;
  vqe.modeled_exec_time_s = e.exec_time_s;

  DockingResult docking;
  const double base = -4.0 - 0.125 * e.length();
  for (int r = 0; r < 20; ++r) {
    docking.run_best.push_back(base + 0.05 * r);
  }
  docking.best_affinity = base;
  docking.mean_affinity = base + 0.05 * 19 / 2.0;
  docking.rmsd_lb_mean = 1.25;
  docking.rmsd_ub_mean = 2.5;
  for (int p = 0; p < 3; ++p) {
    ScoredPose sp;
    sp.affinity = base + 0.01 * p;
    sp.run = p;
    docking.poses.push_back(sp);
  }
  const double ca_rmsd = 0.5 + 0.01 * e.length();

  const std::string dir = entry_directory(root, e);
  write_file_atomic(dir + "/structure.pdb",
                    std::string("REMARK synthetic smoke structure ") + e.pdb_id +
                        "\nEND\n");
  write_file_atomic(dir + "/metadata.json",
                    prediction_metadata_json(e, vqe).dump());
  write_file_atomic(dir + "/docking.json",
                    docking_results_json(e, docking, ca_rmsd).dump());
}

int run(const std::string& workdir) {
  const std::string dataset_root = workdir + "/dataset";
  const std::string store_root = workdir + "/store";

  // --- build + ingest (dedup / idempotence checks) --------------------------
  std::size_t s_count = 0;
  for (const DatasetEntry& e : qdockbank_entries()) {
    write_synthetic_entry(dataset_root, e);
    if (e.group() == Group::S) ++s_count;
  }

  store::Store st(store_root, /*cache_capacity=*/64);
  const store::IngestStats first = st.ingest_dataset(dataset_root);
  SMOKE_CHECK(first.entries_seen == qdockbank_entries().size(),
              "first ingest saw all entries");
  SMOKE_CHECK(first.blobs_written > 0, "first ingest wrote blobs");
  const std::string index_bytes = read_file(st.index_path());

  const store::IngestStats second = st.ingest_dataset(dataset_root);
  SMOKE_CHECK(second.blobs_written == 0, "re-ingest writes zero new blobs");
  SMOKE_CHECK(second.blobs_deduplicated == second.artifacts_seen,
              "re-ingest dedups every artifact");
  SMOKE_CHECK(read_file(st.index_path()) == index_bytes,
              "re-ingest leaves a byte-identical index");

  // --- serve ----------------------------------------------------------------
  serve::ServeOptions opt;
  opt.port = 0;  // ephemeral: parallel CI jobs must not collide
  opt.threads = 4;
  serve::DatasetServer server(st, opt);
  server.start();
  serve::HttpClient client("127.0.0.1", server.port());

  // /healthz
  {
    const serve::HttpClientResponse r = client.get("/healthz");
    SMOKE_CHECK(r.status == 200, "/healthz is 200");
    const Json body = Json::parse(r.body);
    SMOKE_CHECK(body.at("status").as_string() == "ok", "/healthz status ok");
    SMOKE_CHECK(body.at("entries").as_int() ==
                    static_cast<std::int64_t>(qdockbank_entries().size()),
                "/healthz entry count");
  }

  // /entries: full listing + filters + strict 400
  {
    const serve::HttpClientResponse r = client.get("/entries");
    SMOKE_CHECK(r.status == 200, "/entries is 200");
    const Json body = Json::parse(r.body);
    SMOKE_CHECK(body.at("count").as_int() ==
                    static_cast<std::int64_t>(qdockbank_entries().size()),
                "/entries lists every entry");

    const serve::HttpClientResponse s = client.get("/entries?group=S");
    SMOKE_CHECK(Json::parse(s.body).at("count").as_int() ==
                    static_cast<std::int64_t>(s_count),
                "group=S filter count");

    const serve::HttpClientResponse q = client.get("/entries?min_qubits=100");
    // Named binding: range-for over a subobject of a temporary Json would
    // dangle (the parse result dies at the end of the full expression).
    const Json filtered = Json::parse(q.body);
    for (const Json& e : filtered.at("entries").as_array()) {
      SMOKE_CHECK(e.at("qubits").as_int() >= 100, "min_qubits filter holds");
    }

    SMOKE_CHECK(client.get("/entries?bogus=1").status == 400,
                "unknown parameter is 400");
    SMOKE_CHECK(client.get("/entries?min_qubits=abc").status == 400,
                "malformed parameter is 400");
  }

  // Per-entry summary + 404s
  {
    const serve::HttpClientResponse r = client.get("/entries/1yc4");
    SMOKE_CHECK(r.status == 200, "/entries/1yc4 is 200");
    SMOKE_CHECK(Json::parse(r.body).at("pdb_id").as_string() == "1yc4",
                "entry summary pdb_id");
    SMOKE_CHECK(client.get("/entries/zzzz").status == 404, "unknown id is 404");
    SMOKE_CHECK(client.get("/entries/1yc4/nope.bin").status == 404,
                "unknown artifact is 404");
    SMOKE_CHECK(client.get("/nonsense").status == 404, "unknown path is 404");
  }

  // Artifacts: bytes, ETag, If-None-Match -> 304
  {
    const store::EntryRecord* rec = st.find("1yc4");
    SMOKE_CHECK(rec != nullptr, "store has 1yc4");
    for (int i = 0; i < store::kArtifactCount; ++i) {
      const auto a = static_cast<store::Artifact>(i);
      const std::string target =
          std::string("/entries/1yc4/") + store::artifact_filename(a);
      const serve::HttpClientResponse r = client.get(target);
      SMOKE_CHECK(r.status == 200, "artifact GET is 200");
      SMOKE_CHECK(r.body == *st.read_artifact(*rec, a),
                  "artifact bytes match the store");
      std::string etag;
      for (const auto& [k, v] : r.headers) {
        if (k == "etag") etag = v;
      }
      SMOKE_CHECK(etag == "\"" + rec->artifact(a).hash + "\"",
                  "ETag is the quoted content hash");
      const serve::HttpClientResponse c =
          client.get(target, {{"If-None-Match", etag}});
      SMOKE_CHECK(c.status == 304, "If-None-Match revalidation is 304");
      SMOKE_CHECK(c.body.empty(), "304 has no body");
    }
  }

  // /metrics: totals and a warm cache
  {
    const serve::HttpClientResponse r = client.get("/metrics");
    SMOKE_CHECK(r.status == 200, "/metrics is 200");
    const Json body = Json::parse(r.body);
    SMOKE_CHECK(body.at("requests").at("requests_total").as_int() > 0,
                "/metrics counts requests");
    SMOKE_CHECK(body.at("store").at("entries").as_int() ==
                    static_cast<std::int64_t>(qdockbank_entries().size()),
                "/metrics store entry count");
    // The artifact loop above read each blob twice (200 then 304 revalidates
    // via the index only), and the byte-match re-read hit the cache.
    SMOKE_CHECK(body.at("blob_cache").at("hits").as_int() > 0,
                "blob cache saw hits");
  }

  server.stop();
  SMOKE_CHECK(!server.running(), "server stopped cleanly");
  std::printf("serve_smoke: PASS (%d checks; store at %s)\n", g_checks,
              store_root.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workdir;
  bool cleanup = false;
  if (argc > 1) {
    workdir = argv[1];
  } else {
    workdir = (std::filesystem::temp_directory_path() /
               ("qdb_serve_smoke_" + std::to_string(::getpid())))
                  .string();
    cleanup = true;
  }
  int rc = 1;
  try {
    rc = run(workdir);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "serve_smoke: exception: %s\n", ex.what());
    rc = 1;
  }
  if (cleanup) {
    std::error_code ec;
    std::filesystem::remove_all(workdir, ec);
  }
  return rc;
}
