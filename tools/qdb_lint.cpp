#include "tools/qdb_lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace qdb::lint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string strip_impl(const std::string& text) {
  std::string out = text;
  const std::size_t n = text.size();
  std::size_t i = 0;
  auto blank = [&](std::size_t pos) {
    if (out[pos] != '\n') out[pos] = ' ';
  };
  while (i < n) {
    const char c = text[i];
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') blank(i++);
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      blank(i++);
      blank(i++);
      while (i < n && !(text[i] == '*' && i + 1 < n && text[i + 1] == '/')) blank(i++);
      if (i < n) blank(i++);  // '*'
      if (i < n) blank(i++);  // '/'
    } else if (c == '"' && i > 0 && text[i - 1] == 'R') {
      // Raw string literal R"delim( ... )delim".  Find the delimiter, then
      // scan for the closing sequence; newlines inside are preserved.
      std::size_t p = i + 1;
      std::string delim;
      while (p < n && text[p] != '(') delim += text[p++];
      const std::string close = ")" + delim + "\"";
      std::size_t end = text.find(close, p);
      end = (end == std::string::npos) ? n : end + close.size();
      while (i < end && i < n) blank(i++);
    } else if (c == '"') {
      blank(i++);
      while (i < n && text[i] != '"' && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n) blank(i++);
        blank(i++);
      }
      if (i < n && text[i] == '"') blank(i++);
    } else if (c == '\'' && (i == 0 || !is_ident_char(text[i - 1]))) {
      // Char literal — but not a digit separator (1'000'000), which follows
      // an identifier character.
      blank(i++);
      while (i < n && text[i] != '\'' && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n) blank(i++);
        blank(i++);
      }
      if (i < n && text[i] == '\'') blank(i++);
    } else {
      ++i;
    }
  }
  return out;
}

/// Map byte offset -> 1-based line number.
class LineIndex {
 public:
  explicit LineIndex(const std::string& text) {
    starts_.push_back(0);
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\n') starts_.push_back(i + 1);
    }
  }
  int line_of(std::size_t offset) const {
    const auto it = std::upper_bound(starts_.begin(), starts_.end(), offset);
    return static_cast<int>(it - starts_.begin());
  }

 private:
  std::vector<std::size_t> starts_;
};

/// Is the identifier token at [pos, pos+len) free-standing?  Qualified
/// (`foo::tok`), member (`x.tok`, `p->tok`) and substring (`my_tok`, `tokx`)
/// occurrences are rejected — except a `std::` qualifier, which `allow_std`
/// lets through (std::rand is still rand).
bool standalone_token(const std::string& text, std::size_t pos, std::size_t len,
                      bool allow_std) {
  if (pos > 0) {
    const char prev = text[pos - 1];
    if (is_ident_char(prev) || prev == '.') return false;
    if (prev == '>' && pos > 1 && text[pos - 2] == '-') return false;
    if (prev == ':') {
      const bool std_qualified = pos >= 5 && text.compare(pos - 5, 5, "std::") == 0;
      return allow_std && std_qualified;
    }
  }
  const std::size_t after = pos + len;
  return after >= text.size() || !is_ident_char(text[after]);
}

/// First non-space char at or after `pos` (same line semantics not needed —
/// a call's '(' may legally sit on the next line).
std::size_t skip_ws(const std::string& text, std::size_t pos) {
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])) != 0) ++pos;
  return pos;
}

/// Word immediately before `pos`, skipping whitespace (for `operator new`).
std::string previous_word(const std::string& text, std::size_t pos) {
  while (pos > 0 && std::isspace(static_cast<unsigned char>(text[pos - 1])) != 0) --pos;
  std::size_t end = pos;
  while (pos > 0 && is_ident_char(text[pos - 1])) --pos;
  return text.substr(pos, end - pos);
}

char previous_nonspace(const std::string& text, std::size_t pos) {
  while (pos > 0 && std::isspace(static_cast<unsigned char>(text[pos - 1])) != 0) --pos;
  return pos > 0 ? text[pos - 1] : '\0';
}

/// For every standalone occurrence of `token`, call fn(offset).
template <typename Fn>
void for_each_token(const std::string& text, const std::string& token, bool allow_std,
                    Fn&& fn) {
  for (std::size_t pos = text.find(token); pos != std::string::npos;
       pos = text.find(token, pos + 1)) {
    if (standalone_token(text, pos, token.size(), allow_std)) fn(pos);
  }
}

/// Is the token at [pos, pos+len) a plausible direct BSD-socket call site?
/// Accepts the bare (`socket(`) and global-scope (`::socket(`) spellings;
/// rejects members (`x.bind`), qualified names (`std::bind`, `ns::accept`)
/// and substrings (`tcp_accept`).
bool socket_call_token(const std::string& text, std::size_t pos, std::size_t len) {
  if (pos > 0) {
    const char prev = text[pos - 1];
    if (is_ident_char(prev) || prev == '.') return false;
    if (prev == '>' && pos > 1 && text[pos - 2] == '-') return false;
    if (prev == ':') {
      // `::socket` (global scope) is exactly the raw call; `ns::socket` is
      // somebody else's function.
      if (pos < 2 || text[pos - 2] != ':') return false;
      if (pos >= 3) {
        const char before = text[pos - 3];
        if (is_ident_char(before) || before == ':' || before == '>') return false;
      }
    }
  }
  const std::size_t after = pos + len;
  return after >= text.size() || !is_ident_char(text[after]);
}

/// True iff relpath starts with the directory prefix (e.g. "src/obs/").
bool has_dir_prefix(const std::string& relpath, const char* prefix) {
  return relpath.rfind(prefix, 0) == 0;
}

bool first_component_is(const std::string& relpath, const char* component) {
  const std::size_t slash = relpath.find('/');
  return relpath.compare(0, slash == std::string::npos ? relpath.size() : slash,
                         component) == 0;
}

bool is_header(const std::string& relpath) {
  return relpath.size() >= 2 && relpath.compare(relpath.size() - 2, 2, ".h") == 0;
}

}  // namespace

std::string strip_comments_and_strings(const std::string& text) { return strip_impl(text); }

std::vector<Diagnostic> lint_source(const std::string& relpath, const std::string& text) {
  std::vector<Diagnostic> diags;
  const std::string code = strip_impl(text);
  const LineIndex lines(code);
  const bool library = first_component_is(relpath, "src");
  auto add = [&](std::size_t offset, const char* rule, std::string message) {
    diags.push_back({relpath, lines.line_of(offset), rule, std::move(message)});
  };

  // raw-random: rand()/srand()/time() calls anywhere in the tree.
  for (const char* tok : {"rand", "srand", "time"}) {
    for_each_token(code, tok, /*allow_std=*/true, [&](std::size_t pos) {
      const std::size_t paren = skip_ws(code, pos + std::string(tok).size());
      if (paren < code.size() && code[paren] == '(') {
        add(pos, "raw-random",
            std::string("raw ") + tok +
                "() call — use qdb::Rng so runs stay seed-reproducible");
      }
    });
  }

  // stdout-in-library: src/ owns no terminal.
  if (library) {
    for (std::size_t pos = code.find("std::cout"); pos != std::string::npos;
         pos = code.find("std::cout", pos + 1)) {
      const bool start_ok = pos == 0 || !is_ident_char(code[pos - 1]);
      const bool end_ok = pos + 9 >= code.size() || !is_ident_char(code[pos + 9]);
      if (start_ok && end_ok) {
        add(pos, "stdout-in-library",
            "std::cout in library code — return data; printing belongs to "
            "bench/examples/tools");
      }
    }
    for_each_token(code, "printf", /*allow_std=*/true, [&](std::size_t pos) {
      const std::size_t paren = skip_ws(code, pos + 6);
      if (paren < code.size() && code[paren] == '(') {
        add(pos, "stdout-in-library",
            "printf in library code — return data; printing belongs to "
            "bench/examples/tools");
      }
    });
  }

  // stderr-in-library: library diagnostics are structured obs::log events
  // (ISSUE 5).  src/obs/ is exempt — the logger's default sink is the one
  // sanctioned stderr writer in the library.
  if (library && !has_dir_prefix(relpath, "src/obs/")) {
    for (std::size_t pos = code.find("std::cerr"); pos != std::string::npos;
         pos = code.find("std::cerr", pos + 1)) {
      const bool start_ok = pos == 0 || !is_ident_char(code[pos - 1]);
      const bool end_ok = pos + 9 >= code.size() || !is_ident_char(code[pos + 9]);
      if (start_ok && end_ok) {
        add(pos, "stderr-in-library",
            "std::cerr in library code — emit a structured obs::log event "
            "(src/obs/log.cpp owns the stderr sink)");
      }
    }
    for_each_token(code, "fprintf", /*allow_std=*/true, [&](std::size_t pos) {
      const std::size_t paren = skip_ws(code, pos + 7);
      if (paren >= code.size() || code[paren] != '(') return;
      const std::size_t arg = skip_ws(code, paren + 1);
      if (code.compare(arg, 6, "stderr") != 0) return;
      if (arg + 6 < code.size() && is_ident_char(code[arg + 6])) return;
      add(pos, "stderr-in-library",
          "fprintf(stderr, ...) in library code — emit a structured obs::log "
          "event (src/obs/log.cpp owns the stderr sink)");
    });
  }

  // missing-pragma-once: headers only; checked on raw text (pragmas are never
  // inside literals in this codebase, and the stripper does not touch them).
  if (is_header(relpath) && text.find("#pragma once") == std::string::npos) {
    diags.push_back({relpath, 1, "missing-pragma-once", "header lacks #pragma once"});
  }

  // naked-new-delete: raw ownership.  `= delete` and operator new/delete
  // declarations are legitimate uses of the keywords.
  for_each_token(code, "new", /*allow_std=*/false, [&](std::size_t pos) {
    if (previous_word(code, pos) == "operator") return;
    add(pos, "naked-new-delete",
        "naked new — use containers or std::make_unique for ownership");
  });
  for_each_token(code, "delete", /*allow_std=*/false, [&](std::size_t pos) {
    if (previous_nonspace(code, pos) == '=') return;  // deleted function
    if (previous_word(code, pos) == "operator") return;
    add(pos, "naked-new-delete", "naked delete — ownership must be RAII-managed");
  });

  // non-atomic-write: artifacts written from library code must be atomic.
  if (library) {
    for_each_token(code, "write_file", /*allow_std=*/false, [&](std::size_t pos) {
      const std::size_t paren = skip_ws(code, pos + 10);
      if (paren < code.size() && code[paren] == '(') {
        add(pos, "non-atomic-write",
            "write_file() in library code — use write_file_atomic so a crash "
            "never leaves a truncated artifact");
      }
    });
    for_each_token(code, "ofstream", /*allow_std=*/true, [&](std::size_t pos) {
      add(pos, "non-atomic-write",
          "std::ofstream in library code — route writes through "
          "write_file_atomic");
    });
  }

  // omp-pragma: OpenMP stays behind the parallel.h wrappers so the TSan
  // build can substitute its instrumentable std::thread backend.
  if (relpath != "src/common/parallel.h") {
    for (std::size_t pos = code.find("#pragma omp"); pos != std::string::npos;
         pos = code.find("#pragma omp", pos + 1)) {
      add(pos, "omp-pragma",
          "#pragma omp outside common/parallel.h — use the parallel_for "
          "wrappers (the TSan build swaps in a std::thread backend there)");
    }
  }

  // raw-socket: direct BSD socket API calls.  All socket plumbing lives in
  // the serve layer's RAII wrapper (src/serve/net_socket.*, allowlisted) so
  // there is exactly one place that owns fds, EINTR loops and shutdown
  // semantics; everything else goes through Socket / HttpClient.
  for (const char* tok : {"socket", "bind", "accept", "listen", "connect"}) {
    const std::string token = tok;
    for (std::size_t pos = code.find(token); pos != std::string::npos;
         pos = code.find(token, pos + 1)) {
      if (!socket_call_token(code, pos, token.size())) continue;
      const std::size_t paren = skip_ws(code, pos + token.size());
      if (paren < code.size() && code[paren] == '(') {
        add(pos, "raw-socket",
            std::string("raw ") + tok +
                "() call — socket plumbing belongs to the serve/net_socket "
                "wrapper (RAII fds, EINTR handling, shutdown semantics)");
      }
    }
  }

  // sleep-in-library: blocking sleeps in src/ outside src/common/ (ISSUE 7).
  // Library code takes time from the injectable qdb::Clock (common/clock.h,
  // the one sanctioned sleep_for site) so lease-expiry and backoff tests run
  // on a ManualClock in microseconds instead of wall-clock minutes.  The
  // matcher is a plain find with identifier-boundary checks — unlike
  // standalone_token it must accept the qualified `this_thread::sleep_for`
  // spelling, which is exactly the call being banned.
  if (library && !has_dir_prefix(relpath, "src/common/")) {
    for (const char* tok : {"sleep_for", "sleep_until", "usleep", "nanosleep"}) {
      const std::string token = tok;
      for (std::size_t pos = code.find(token); pos != std::string::npos;
           pos = code.find(token, pos + 1)) {
        if (pos > 0) {
          const char prev = code[pos - 1];
          // Qualified spellings (std::this_thread::sleep_for, ::usleep) are
          // the banned calls; members (`x.sleep_for`) and substrings
          // (`my_sleep_for`, `sleep_forever`) are somebody else's API.
          if (is_ident_char(prev) || prev == '.') continue;
          if (prev == '>' && pos > 1 && code[pos - 2] == '-') continue;
        }
        const std::size_t after = pos + token.size();
        if (after < code.size() && is_ident_char(code[after])) continue;
        const std::size_t paren = skip_ws(code, after);
        if (paren < code.size() && code[paren] == '(') {
          add(pos, "sleep-in-library",
              std::string("blocking ") + tok +
                  "() in library code — take time from an injectable "
                  "qdb::Clock (common/clock.h) so tests control the clock");
        }
      }
    }
  }

  // simd-intrinsics: raw SIMD intrinsics live in exactly one place — the
  // fused statevector kernels (src/quantum/kernels.*, allowlisted) — so the
  // scalar-fallback build (-DQDB_NO_AVX2=ON) and non-x86 ports have a single
  // surface to audit.  Everything else vectorises through the kernel layer.
  for (const char* tok : {"immintrin.h", "_mm256", "__m256"}) {
    const std::string token = tok;
    for (std::size_t pos = code.find(token); pos != std::string::npos;
         pos = code.find(token, pos + token.size())) {
      if (pos > 0 && is_ident_char(code[pos - 1])) continue;
      add(pos, "simd-intrinsics",
          std::string("raw SIMD intrinsic (") + tok +
              ") — vector kernels belong to src/quantum/kernels.* behind its "
              "runtime dispatch and QDB_NO_AVX2 fallback");
    }
  }

  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return diags;
}

std::vector<Diagnostic> lint_tree(const std::filesystem::path& root,
                                  const std::vector<std::string>& dirs) {
  namespace fs = std::filesystem;
  std::vector<Diagnostic> all;
  for (const std::string& dir : dirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (auto it = fs::recursive_directory_iterator(base);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && it->path().filename() == "lint_fixtures") {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cpp") continue;
      std::string relpath = fs::relative(it->path(), root).generic_string();
      std::ifstream in(it->path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      std::vector<Diagnostic> diags = lint_source(relpath, buf.str());
      all.insert(all.end(), diags.begin(), diags.end());
    }
  }
  std::sort(all.begin(), all.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return all;
}

std::vector<AllowEntry> parse_allowlist(const std::string& text) {
  std::vector<AllowEntry> entries;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    AllowEntry e;
    if (fields >> e.file >> e.rule) entries.push_back(std::move(e));
  }
  return entries;
}

std::vector<Diagnostic> apply_allowlist(const std::vector<Diagnostic>& diags,
                                        const std::vector<AllowEntry>& allow,
                                        std::vector<AllowEntry>* unused) {
  std::vector<bool> used(allow.size(), false);
  std::vector<Diagnostic> kept;
  for (const Diagnostic& d : diags) {
    bool suppressed = false;
    for (std::size_t i = 0; i < allow.size(); ++i) {
      if (allow[i].file == d.file && allow[i].rule == d.rule) {
        used[i] = true;
        suppressed = true;
      }
    }
    if (!suppressed) kept.push_back(d);
  }
  if (unused != nullptr) {
    for (std::size_t i = 0; i < allow.size(); ++i) {
      if (!used[i]) unused->push_back(allow[i]);
    }
  }
  return kept;
}

std::string format_diagnostic(const Diagnostic& d) {
  std::ostringstream out;
  out << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message;
  return out.str();
}

}  // namespace qdb::lint
