#include "tools/qdb_lint.h"

#include <string>
#include <vector>

#include "tools/scan_util.h"

namespace qdb::lint {

namespace {

using qdb::scan::LineIndex;
using qdb::scan::first_component_is;
using qdb::scan::for_each_token;
using qdb::scan::has_dir_prefix;
using qdb::scan::is_header;
using qdb::scan::is_ident_char;
using qdb::scan::previous_nonspace;
using qdb::scan::previous_word;
using qdb::scan::skip_ws;

/// Is the token at [pos, pos+len) a plausible direct BSD-socket call site?
/// Accepts the bare (`socket(`) and global-scope (`::socket(`) spellings;
/// rejects members (`x.bind`), qualified names (`std::bind`, `ns::accept`)
/// and substrings (`tcp_accept`).
bool socket_call_token(const std::string& text, std::size_t pos, std::size_t len) {
  if (pos > 0) {
    const char prev = text[pos - 1];
    if (is_ident_char(prev) || prev == '.') return false;
    if (prev == '>' && pos > 1 && text[pos - 2] == '-') return false;
    if (prev == ':') {
      // `::socket` (global scope) is exactly the raw call; `ns::socket` is
      // somebody else's function.
      if (pos < 2 || text[pos - 2] != ':') return false;
      if (pos >= 3) {
        const char before = text[pos - 3];
        if (is_ident_char(before) || before == ':' || before == '>') return false;
      }
    }
  }
  const std::size_t after = pos + len;
  return after >= text.size() || !is_ident_char(text[after]);
}

}  // namespace

std::vector<Diagnostic> lint_source(const std::string& relpath, const std::string& text) {
  std::vector<Diagnostic> diags;
  const std::string code = strip_comments_and_strings(text);
  const LineIndex lines(code);
  const bool library = first_component_is(relpath, "src");
  auto add = [&](std::size_t offset, const char* rule, std::string message) {
    diags.push_back({relpath, lines.line_of(offset), rule, std::move(message)});
  };

  // raw-random: rand()/srand()/time() calls anywhere in the tree.
  for (const char* tok : {"rand", "srand", "time"}) {
    for_each_token(code, tok, /*allow_std=*/true, [&](std::size_t pos) {
      const std::size_t paren = skip_ws(code, pos + std::string(tok).size());
      if (paren < code.size() && code[paren] == '(') {
        add(pos, "raw-random",
            std::string("raw ") + tok +
                "() call — use qdb::Rng so runs stay seed-reproducible");
      }
    });
  }

  // stdout-in-library: src/ owns no terminal.
  if (library) {
    for (std::size_t pos = code.find("std::cout"); pos != std::string::npos;
         pos = code.find("std::cout", pos + 1)) {
      const bool start_ok = pos == 0 || !is_ident_char(code[pos - 1]);
      const bool end_ok = pos + 9 >= code.size() || !is_ident_char(code[pos + 9]);
      if (start_ok && end_ok) {
        add(pos, "stdout-in-library",
            "std::cout in library code — return data; printing belongs to "
            "bench/examples/tools");
      }
    }
    for_each_token(code, "printf", /*allow_std=*/true, [&](std::size_t pos) {
      const std::size_t paren = skip_ws(code, pos + 6);
      if (paren < code.size() && code[paren] == '(') {
        add(pos, "stdout-in-library",
            "printf in library code — return data; printing belongs to "
            "bench/examples/tools");
      }
    });
  }

  // stderr-in-library: library diagnostics are structured obs::log events
  // (ISSUE 5).  src/obs/ is exempt — the logger's default sink is the one
  // sanctioned stderr writer in the library.
  if (library && !has_dir_prefix(relpath, "src/obs/")) {
    for (std::size_t pos = code.find("std::cerr"); pos != std::string::npos;
         pos = code.find("std::cerr", pos + 1)) {
      const bool start_ok = pos == 0 || !is_ident_char(code[pos - 1]);
      const bool end_ok = pos + 9 >= code.size() || !is_ident_char(code[pos + 9]);
      if (start_ok && end_ok) {
        add(pos, "stderr-in-library",
            "std::cerr in library code — emit a structured obs::log event "
            "(src/obs/log.cpp owns the stderr sink)");
      }
    }
    for_each_token(code, "fprintf", /*allow_std=*/true, [&](std::size_t pos) {
      const std::size_t paren = skip_ws(code, pos + 7);
      if (paren >= code.size() || code[paren] != '(') return;
      const std::size_t arg = skip_ws(code, paren + 1);
      if (code.compare(arg, 6, "stderr") != 0) return;
      if (arg + 6 < code.size() && is_ident_char(code[arg + 6])) return;
      add(pos, "stderr-in-library",
          "fprintf(stderr, ...) in library code — emit a structured obs::log "
          "event (src/obs/log.cpp owns the stderr sink)");
    });
  }

  // missing-pragma-once: headers only; checked on raw text (pragmas are never
  // inside literals in this codebase, and the stripper does not touch them).
  if (is_header(relpath) && text.find("#pragma once") == std::string::npos) {
    diags.push_back({relpath, 1, "missing-pragma-once", "header lacks #pragma once"});
  }

  // naked-new-delete: raw ownership.  `= delete` and operator new/delete
  // declarations are legitimate uses of the keywords.
  for_each_token(code, "new", /*allow_std=*/false, [&](std::size_t pos) {
    if (previous_word(code, pos) == "operator") return;
    add(pos, "naked-new-delete",
        "naked new — use containers or std::make_unique for ownership");
  });
  for_each_token(code, "delete", /*allow_std=*/false, [&](std::size_t pos) {
    if (previous_nonspace(code, pos) == '=') return;  // deleted function
    if (previous_word(code, pos) == "operator") return;
    add(pos, "naked-new-delete", "naked delete — ownership must be RAII-managed");
  });

  // non-atomic-write: artifacts written from library code must be atomic.
  if (library) {
    for_each_token(code, "write_file", /*allow_std=*/false, [&](std::size_t pos) {
      const std::size_t paren = skip_ws(code, pos + 10);
      if (paren < code.size() && code[paren] == '(') {
        add(pos, "non-atomic-write",
            "write_file() in library code — use write_file_atomic so a crash "
            "never leaves a truncated artifact");
      }
    });
    for_each_token(code, "ofstream", /*allow_std=*/true, [&](std::size_t pos) {
      add(pos, "non-atomic-write",
          "std::ofstream in library code — route writes through "
          "write_file_atomic");
    });
  }

  // omp-pragma: OpenMP stays behind the parallel.h wrappers so the TSan
  // build can substitute its instrumentable std::thread backend.
  if (relpath != "src/common/parallel.h") {
    for (std::size_t pos = code.find("#pragma omp"); pos != std::string::npos;
         pos = code.find("#pragma omp", pos + 1)) {
      add(pos, "omp-pragma",
          "#pragma omp outside common/parallel.h — use the parallel_for "
          "wrappers (the TSan build swaps in a std::thread backend there)");
    }
  }

  // raw-socket: direct BSD socket API calls.  All socket plumbing lives in
  // the serve layer's RAII wrapper (src/serve/net_socket.*, allowlisted) so
  // there is exactly one place that owns fds, EINTR loops and shutdown
  // semantics; everything else goes through Socket / HttpClient.
  for (const char* tok : {"socket", "bind", "accept", "listen", "connect"}) {
    const std::string token = tok;
    for (std::size_t pos = code.find(token); pos != std::string::npos;
         pos = code.find(token, pos + 1)) {
      if (!socket_call_token(code, pos, token.size())) continue;
      const std::size_t paren = skip_ws(code, pos + token.size());
      if (paren < code.size() && code[paren] == '(') {
        add(pos, "raw-socket",
            std::string("raw ") + tok +
                "() call — socket plumbing belongs to the serve/net_socket "
                "wrapper (RAII fds, EINTR handling, shutdown semantics)");
      }
    }
  }

  // sleep-in-library: blocking sleeps in src/ outside src/common/ (ISSUE 7).
  // Library code takes time from the injectable qdb::Clock (common/clock.h,
  // the one sanctioned sleep_for site) so lease-expiry and backoff tests run
  // on a ManualClock in microseconds instead of wall-clock minutes.  The
  // matcher is a plain find with identifier-boundary checks — unlike
  // standalone_token it must accept the qualified `this_thread::sleep_for`
  // spelling, which is exactly the call being banned.
  if (library && !has_dir_prefix(relpath, "src/common/")) {
    for (const char* tok : {"sleep_for", "sleep_until", "usleep", "nanosleep"}) {
      const std::string token = tok;
      for (std::size_t pos = code.find(token); pos != std::string::npos;
           pos = code.find(token, pos + 1)) {
        if (pos > 0) {
          const char prev = code[pos - 1];
          // Qualified spellings (std::this_thread::sleep_for, ::usleep) are
          // the banned calls; members (`x.sleep_for`) and substrings
          // (`my_sleep_for`, `sleep_forever`) are somebody else's API.
          if (is_ident_char(prev) || prev == '.') continue;
          if (prev == '>' && pos > 1 && code[pos - 2] == '-') continue;
        }
        const std::size_t after = pos + token.size();
        if (after < code.size() && is_ident_char(code[after])) continue;
        const std::size_t paren = skip_ws(code, after);
        if (paren < code.size() && code[paren] == '(') {
          add(pos, "sleep-in-library",
              std::string("blocking ") + tok +
                  "() in library code — take time from an injectable "
                  "qdb::Clock (common/clock.h) so tests control the clock");
        }
      }
    }
  }

  // simd-intrinsics: raw SIMD intrinsics live in exactly one place — the
  // fused statevector kernels (src/quantum/kernels.*, allowlisted) — so the
  // scalar-fallback build (-DQDB_NO_AVX2=ON) and non-x86 ports have a single
  // surface to audit.  Everything else vectorises through the kernel layer.
  for (const char* tok : {"immintrin.h", "_mm256", "__m256"}) {
    const std::string token = tok;
    for (std::size_t pos = code.find(token); pos != std::string::npos;
         pos = code.find(token, pos + token.size())) {
      if (pos > 0 && is_ident_char(code[pos - 1])) continue;
      add(pos, "simd-intrinsics",
          std::string("raw SIMD intrinsic (") + tok +
              ") — vector kernels belong to src/quantum/kernels.* behind its "
              "runtime dispatch and QDB_NO_AVX2 fallback");
    }
  }

  // raw-traceparent: the W3C context header is parsed, formatted and even
  // *named* in exactly one place — src/obs/trace.h (allowlisted home of
  // kTraceparentHeader) — so strictness rules (reject uppercase hex, zero
  // ids, wrong version) cannot fork between hand-rolled copies.  The banned
  // spelling is a string literal, which strip_comments_and_strings removes,
  // so this rule scans the RAW text with its own line index.
  if (library) {
    const LineIndex raw_lines(text);
    const std::string needle = "\"traceparent\"";
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + 1)) {
      diags.push_back(
          {relpath, raw_lines.line_of(pos), "raw-traceparent",
           "hand-rolled traceparent literal — use obs::kTraceparentHeader "
           "with parse_traceparent/format_traceparent (src/obs/trace.h owns "
           "the header and its strictness rules)"});
    }
  }

  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return diags;
}

std::vector<Diagnostic> lint_tree(const std::filesystem::path& root,
                                  const std::vector<std::string>& dirs) {
  std::vector<Diagnostic> all;
  qdb::scan::for_each_source_file(root, dirs,
                                  [&](const std::string& relpath, const std::string& text) {
                                    std::vector<Diagnostic> diags = lint_source(relpath, text);
                                    all.insert(all.end(), diags.begin(), diags.end());
                                  });
  qdb::scan::sort_diagnostics(all);
  return all;
}

}  // namespace qdb::lint
