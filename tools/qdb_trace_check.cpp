// qdb_trace_check: schema and consistency checker for qdb_cli --trace dumps
// and qdb_trace_merge outputs.
//
//   qdb_trace_check <trace.json> [--require-span <name>]...
//                   [--merge] [--require-ancestor <child>=<ancestor>[@<pct>]]...
//
// Single-process mode validates the Chrome-trace document the CLI writes
// (ISSUE 5):
//
//   1. Top-level shape: "traceEvents" array, "displayTimeUnit" string, plus
//      the qdb extensions "summary" (array), "registry" (object) and
//      "prometheus" (string).  Extra top-level keys are legal in the
//      trace_event format — viewers ignore them — so embedding the metric
//      snapshot next to the events costs nothing.
//   2. Every event is a complete ("ph":"X") event carrying name / cat / ts /
//      dur / pid / tid with the right types and non-negative times; the
//      distributed-tracing fields ("trace" 32 hex, "span"/"parent" 16 hex,
//      ISSUE 10) are well-formed and self-consistent when present, and span
//      ids are unique within the document.
//   3. Exact agreement: for every span name, the number of trace events
//      equals the "summary" count, which equals the registry histogram
//      `span.<name>` count, and the summed event durations equal the summary
//      total_us (with self_us <= total_us).  This is the acceptance
//      criterion that ties the trace layer to the metric layer — the two are
//      recorded independently on the hot path, so any drift is a bug.
//   4. The embedded Prometheus exposition declares each family's # TYPE at
//      most once and every sample line parses as `name{labels} value`.
//
// --merge mode validates a qdb_trace_merge output instead (ISSUE 10):
// top-level "merged": true plus a "processes" array of
// {pid, name, summary, registry}; pid lanes are disjoint (unique pids,
// every event's pid named by a process); span ids are globally unique;
// every non-root "parent" reference resolves to a span id somewhere in the
// merged document (this is what makes cross-process parenting real, not
// cosmetic); and the trace==summary==histogram agreement holds per process
// over that process's pid lane.
//
// --require-ancestor child=ancestor[@pct] (merge mode's reason to exist):
// at least <pct>% (default 100) of the events named <child> must reach an
// event named <ancestor> by walking parent references — transitively,
// across processes.  The CI chaos gate uses
// `--require-ancestor orchestrate.job=orchestrate.lease@95` to prove worker
// job spans really parent to coordinator lease spans.
//
// Exit status: 0 clean, 1 findings, 2 usage/io error.  Output lines are
// `trace.json: message` so CI annotations parse them.
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "common/json.h"

namespace {

using qdb::Json;

int g_findings = 0;
const char* g_path = "";

void fail(const std::string& message) {
  std::printf("%s: %s\n", g_path, message.c_str());
  ++g_findings;
}

/// Per-span-name tallies accumulated from the raw events.
struct NameTally {
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
};

/// One event that carried a distributed-trace span id.
struct IdEvent {
  std::string name;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;  // 0 = trace root
};

struct EventsScan {
  std::map<std::string, NameTally> by_name;
  std::map<std::int64_t, std::map<std::string, NameTally>> by_pid;
  std::set<std::int64_t> pids;
  std::vector<IdEvent> id_events;
};

bool parse_hex_id(const std::string& text, std::size_t digits,
                  std::uint64_t* out) {
  if (text.size() != digits) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    std::uint64_t d = 0;
    if (c >= '0' && c <= '9') {
      d = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;  // uppercase is a finding: the exporter writes lowercase
    }
    v = (v << 4) | d;
  }
  *out = v;
  return true;
}

EventsScan scan_events(const Json& doc) {
  EventsScan scan;
  const qdb::JsonArray& events = doc.at("traceEvents").as_array();
  std::size_t index = 0;
  for (const Json& ev : events) {
    const std::string where = "traceEvents[" + std::to_string(index++) + "]";
    if (!ev.is_object()) {
      fail(where + " is not an object");
      continue;
    }
    bool usable = true;
    for (const char* key : {"name", "cat", "ph"}) {
      if (!ev.contains(key) || !ev.at(key).is_string()) {
        fail(where + " missing string field \"" + key + "\"");
        usable = false;
      }
    }
    for (const char* key : {"ts", "dur", "pid", "tid"}) {
      if (!ev.contains(key) || !ev.at(key).is_number()) {
        fail(where + " missing numeric field \"" + key + "\"");
        usable = false;
      } else if (ev.at(key).as_int() < 0) {
        fail(where + " has negative \"" + key + "\"");
        usable = false;
      }
    }
    if (!usable) continue;
    if (ev.at("ph").as_string() != "X") {
      fail(where + " phase is \"" + ev.at("ph").as_string() +
           "\" (expected complete event \"X\")");
      continue;
    }
    if (ev.at("name").as_string().empty()) {
      fail(where + " has an empty span name");
      continue;
    }
    if (ev.contains("args") && !ev.at("args").is_object()) {
      fail(where + " \"args\" is not an object");
    }

    // Distributed-tracing fields (ISSUE 10): optional as a set, but all or
    // nothing per event ("parent" additionally requires a non-root parent).
    IdEvent id;
    bool has_id = false;
    if (ev.contains("span") != ev.contains("trace")) {
      fail(where + " carries \"span\"/\"trace\" without the other");
    } else if (ev.contains("span")) {
      std::uint64_t trace_hi_lo[2] = {0, 0};
      const std::string& trace = ev.at("trace").as_string();
      const std::string& span = ev.at("span").as_string();
      bool ok = true;
      if (trace.size() != 32 ||
          !parse_hex_id(trace.substr(0, 16), 16, &trace_hi_lo[0]) ||
          !parse_hex_id(trace.substr(16, 16), 16, &trace_hi_lo[1]) ||
          (trace_hi_lo[0] | trace_hi_lo[1]) == 0) {
        fail(where + " \"trace\" is not 32 lowercase hex chars (nonzero)");
        ok = false;
      }
      if (!parse_hex_id(span, 16, &id.span) || id.span == 0) {
        fail(where + " \"span\" is not 16 lowercase hex chars (nonzero)");
        ok = false;
      }
      if (ev.contains("parent")) {
        if (!parse_hex_id(ev.at("parent").as_string(), 16, &id.parent) ||
            id.parent == 0) {
          fail(where + " \"parent\" is not 16 lowercase hex chars (nonzero)");
          ok = false;
        } else if (id.parent == id.span) {
          fail(where + " is its own parent");
          ok = false;
        }
      }
      has_id = ok;
    } else if (ev.contains("parent")) {
      fail(where + " carries \"parent\" without \"span\"");
    }

    const std::string& name = ev.at("name").as_string();
    const std::int64_t pid = ev.at("pid").as_int();
    scan.pids.insert(pid);
    NameTally& tally = scan.by_name[name];
    tally.count += 1;
    tally.total_us += static_cast<std::uint64_t>(ev.at("dur").as_int());
    NameTally& lane = scan.by_pid[pid][name];
    lane.count += 1;
    lane.total_us += static_cast<std::uint64_t>(ev.at("dur").as_int());
    if (has_id) {
      id.name = name;
      scan.id_events.push_back(std::move(id));
    }
  }
  return scan;
}

void check_span_id_uniqueness(const EventsScan& scan) {
  std::unordered_map<std::uint64_t, const IdEvent*> seen;
  seen.reserve(scan.id_events.size());
  for (const IdEvent& ev : scan.id_events) {
    const auto [it, inserted] = seen.emplace(ev.span, &ev);
    if (!inserted) {
      fail("span id collision: \"" + ev.name + "\" and \"" + it->second->name +
           "\" both carry span id " + std::to_string(ev.span));
    }
  }
}

void check_parent_resolution(const EventsScan& scan) {
  std::set<std::uint64_t> spans;
  for (const IdEvent& ev : scan.id_events) spans.insert(ev.span);
  for (const IdEvent& ev : scan.id_events) {
    if (ev.parent != 0 && spans.count(ev.parent) == 0) {
      fail("span \"" + ev.name + "\" has unresolved parent id " +
           std::to_string(ev.parent) + " (no such span in the document)");
    }
  }
}

/// One --require-ancestor directive.
struct AncestorRequirement {
  std::string child;
  std::string ancestor;
  int min_pct = 100;
};

void check_ancestry(const EventsScan& scan, const AncestorRequirement& req) {
  const auto denom_it = scan.by_name.find(req.child);
  const std::uint64_t denominator =
      denom_it == scan.by_name.end() ? 0 : denom_it->second.count;
  if (denominator == 0) {
    fail("--require-ancestor: no events named \"" + req.child + "\"");
    return;
  }
  std::unordered_map<std::uint64_t, const IdEvent*> by_span;
  by_span.reserve(scan.id_events.size());
  for (const IdEvent& ev : scan.id_events) by_span.emplace(ev.span, &ev);

  std::uint64_t hits = 0;
  for (const IdEvent& ev : scan.id_events) {
    if (ev.name != req.child) continue;
    const IdEvent* cursor = &ev;
    for (int hop = 0; hop < 64 && cursor->parent != 0; ++hop) {
      const auto it = by_span.find(cursor->parent);
      if (it == by_span.end()) break;
      cursor = it->second;
      if (cursor->name == req.ancestor) {
        ++hits;
        break;
      }
    }
  }
  // Events named child without ids count against coverage: an un-propagated
  // context is exactly the regression this check exists to catch.
  const std::uint64_t pct = hits * 100 / denominator;
  if (pct < static_cast<std::uint64_t>(req.min_pct)) {
    fail("--require-ancestor: only " + std::to_string(hits) + "/" +
         std::to_string(denominator) + " (" + std::to_string(pct) +
         "%) of \"" + req.child + "\" spans reach ancestor \"" + req.ancestor +
         "\" (need " + std::to_string(req.min_pct) + "%)");
  }
}

void check_summary_agreement(const Json& summary,
                             const std::map<std::string, NameTally>& by_name,
                             const std::string& label) {
  std::set<std::string> summarized;
  for (const Json& row : summary.as_array()) {
    const std::string& name = row.at("name").as_string();
    summarized.insert(name);
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      fail(label + "summary names span \"" + name + "\" with no trace events");
      continue;
    }
    const auto count = static_cast<std::uint64_t>(row.at("count").as_int());
    const auto total = static_cast<std::uint64_t>(row.at("total_us").as_int());
    const auto self = static_cast<std::uint64_t>(row.at("self_us").as_int());
    if (count != it->second.count) {
      fail(label + "summary count for \"" + name + "\" is " +
           std::to_string(count) + " but the trace holds " +
           std::to_string(it->second.count) + " events");
    }
    if (total != it->second.total_us) {
      fail(label + "summary total_us for \"" + name + "\" is " +
           std::to_string(total) + " but event durations sum to " +
           std::to_string(it->second.total_us));
    }
    if (self > total) {
      fail(label + "summary self_us for \"" + name + "\" exceeds its total_us");
    }
  }
  for (const auto& [name, tally] : by_name) {
    (void)tally;
    if (summarized.count(name) == 0) {
      fail(label + "span \"" + name +
           "\" appears in traceEvents but not in summary");
    }
  }
}

void check_registry_agreement(const Json& registry,
                              const std::map<std::string, NameTally>& by_name,
                              const std::string& label) {
  const Json& histograms = registry.at("histograms");
  if (!histograms.is_object()) {
    fail(label + "registry.histograms is not an object");
    return;
  }
  for (const auto& [name, tally] : by_name) {
    const std::string metric = "span." + name;
    if (!histograms.contains(metric)) {
      fail(label + "registry has no histogram \"" + metric +
           "\" for a traced span");
      continue;
    }
    const auto registered =
        static_cast<std::uint64_t>(histograms.at(metric).at("count").as_int());
    if (registered != tally.count) {
      fail(label + "registry histogram \"" + metric + "\" counts " +
           std::to_string(registered) + " but the trace holds " +
           std::to_string(tally.count) + " events (must agree exactly)");
    }
  }
}

void check_prometheus(const Json& doc) {
  const std::string& text = doc.at("prometheus").as_string();
  std::set<std::string> families;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::size_t name_end = line.find(' ', 7);
      const std::string family =
          line.substr(7, name_end == std::string::npos ? std::string::npos
                                                       : name_end - 7);
      if (!families.insert(family).second) {
        fail("prometheus line " + std::to_string(line_no) +
             ": duplicate # TYPE for family \"" + family + "\"");
      }
      continue;
    }
    if (line[0] == '#') continue;  // other comments are legal
    // Sample line: metric_name[{labels}] value
    std::size_t name_end = 0;
    while (name_end < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[name_end])) != 0 ||
            line[name_end] == '_' || line[name_end] == ':')) {
      ++name_end;
    }
    if (name_end == 0) {
      fail("prometheus line " + std::to_string(line_no) +
           " does not start with a metric name: " + line);
      continue;
    }
    std::size_t rest = name_end;
    if (rest < line.size() && line[rest] == '{') {
      // Labels: scan to the closing brace outside of quoted strings.
      bool in_quotes = false;
      bool escaped = false;
      ++rest;
      while (rest < line.size()) {
        const char c = line[rest];
        if (escaped) {
          escaped = false;
        } else if (c == '\\') {
          escaped = true;
        } else if (c == '"') {
          in_quotes = !in_quotes;
        } else if (c == '}' && !in_quotes) {
          break;
        }
        ++rest;
      }
      if (rest >= line.size()) {
        fail("prometheus line " + std::to_string(line_no) +
             " has an unterminated label set: " + line);
        continue;
      }
      ++rest;  // past '}'
    }
    if (rest >= line.size() || line[rest] != ' ') {
      fail("prometheus line " + std::to_string(line_no) +
           " is missing the value separator: " + line);
      continue;
    }
    const std::string value = line.substr(rest + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      fail("prometheus line " + std::to_string(line_no) +
           " has a non-numeric value \"" + value + "\"");
    }
  }
}

void check_merged_processes(const Json& doc, const EventsScan& scan) {
  const qdb::JsonArray& processes = doc.at("processes").as_array();
  if (processes.empty()) {
    fail("merged document has an empty \"processes\" array");
    return;
  }
  std::set<std::int64_t> lane_pids;
  std::size_t index = 0;
  for (const Json& proc : processes) {
    const std::string where = "processes[" + std::to_string(index++) + "]";
    if (!proc.is_object() || !proc.contains("pid") ||
        !proc.at("pid").is_number() || !proc.contains("name") ||
        !proc.at("name").is_string() || !proc.contains("summary") ||
        !proc.at("summary").is_array() || !proc.contains("registry") ||
        !proc.at("registry").is_object()) {
      fail(where + " must carry pid / name / summary / registry");
      continue;
    }
    const std::int64_t pid = proc.at("pid").as_int();
    if (!lane_pids.insert(pid).second) {
      fail(where + " reuses pid " + std::to_string(pid) +
           " (pid lanes must be disjoint)");
      continue;
    }
    const std::string label =
        "pid " + std::to_string(pid) + " (" + proc.at("name").as_string() + "): ";
    static const std::map<std::string, NameTally> kEmpty;
    const auto lane_it = scan.by_pid.find(pid);
    const auto& lane = lane_it == scan.by_pid.end() ? kEmpty : lane_it->second;
    check_summary_agreement(proc.at("summary"), lane, label);
    check_registry_agreement(proc.at("registry"), lane, label);
  }
  for (const std::int64_t pid : scan.pids) {
    if (lane_pids.count(pid) == 0) {
      fail("events carry pid " + std::to_string(pid) +
           " but no process entry claims that lane");
    }
  }
}

constexpr const char* kUsage =
    "usage: qdb_trace_check <trace.json> [--require-span <name>]...\n"
    "                       [--merge] "
    "[--require-ancestor <child>=<ancestor>[@<pct>]]...\n";

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required_spans;
  std::vector<AncestorRequirement> required_ancestors;
  bool merge_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require-span" && i + 1 < argc) {
      required_spans.push_back(argv[++i]);
    } else if (arg == "--merge") {
      merge_mode = true;
    } else if (arg == "--require-ancestor" && i + 1 < argc) {
      const std::string spec = argv[++i];
      AncestorRequirement req;
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "%s", kUsage);
        return 2;
      }
      req.child = spec.substr(0, eq);
      std::string rest = spec.substr(eq + 1);
      const std::size_t at = rest.find('@');
      if (at != std::string::npos) {
        char* end = nullptr;
        const long pct = std::strtol(rest.c_str() + at + 1, &end, 10);
        if (end == nullptr || *end != '\0' || pct < 0 || pct > 100) {
          std::fprintf(stderr, "%s", kUsage);
          return 2;
        }
        req.min_pct = static_cast<int>(pct);
        rest = rest.substr(0, at);
      }
      if (rest.empty()) {
        std::fprintf(stderr, "%s", kUsage);
        return 2;
      }
      req.ancestor = rest;
      required_ancestors.push_back(std::move(req));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s", kUsage);
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "qdb_trace_check: more than one input file\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  g_path = path.c_str();

  Json doc;
  try {
    doc = Json::parse(qdb::read_file(path));
  } catch (const qdb::Error& e) {
    std::fprintf(stderr, "qdb_trace_check: %s\n", e.what());
    return 2;
  }

  try {
    // Top-level shape.
    if (!doc.contains("traceEvents") || !doc.at("traceEvents").is_array()) {
      fail("missing top-level \"traceEvents\" array");
    }
    if (!doc.contains("displayTimeUnit") ||
        !doc.at("displayTimeUnit").is_string()) {
      fail("missing top-level \"displayTimeUnit\" string");
    }
    if (merge_mode) {
      if (!doc.contains("merged") ||
          doc.at("merged").type() != Json::Type::Bool ||
          !doc.at("merged").as_bool()) {
        fail("missing top-level \"merged\": true (is this a qdb_trace_merge "
             "output?)");
      }
      if (!doc.contains("processes") || !doc.at("processes").is_array()) {
        fail("missing top-level \"processes\" array");
      }
    } else {
      if (!doc.contains("summary") || !doc.at("summary").is_array()) {
        fail("missing top-level \"summary\" array");
      }
      if (!doc.contains("registry") || !doc.at("registry").is_object()) {
        fail("missing top-level \"registry\" object");
      }
      if (!doc.contains("prometheus") || !doc.at("prometheus").is_string()) {
        fail("missing top-level \"prometheus\" string");
      }
    }
    if (g_findings != 0) {
      std::printf("qdb_trace_check: %d finding(s)\n", g_findings);
      return 1;
    }

    const EventsScan scan = scan_events(doc);
    check_span_id_uniqueness(scan);
    if (merge_mode) {
      // Parent references must resolve only in merge mode: a lone worker
      // dump legitimately references lease spans that live in the
      // coordinator's dump.
      check_parent_resolution(scan);
      check_merged_processes(doc, scan);
    } else {
      check_summary_agreement(doc.at("summary"), scan.by_name, "");
      check_registry_agreement(doc.at("registry"), scan.by_name, "");
      check_prometheus(doc);
    }
    for (const std::string& name : required_spans) {
      if (scan.by_name.count(name) == 0) {
        fail("required span \"" + name + "\" has no trace events");
      }
    }
    for (const AncestorRequirement& req : required_ancestors) {
      check_ancestry(scan, req);
    }

    if (g_findings == 0) {
      std::printf("qdb_trace_check: %s clean (%zu span name%s, %zu events)\n",
                  path.c_str(), scan.by_name.size(),
                  scan.by_name.size() == 1 ? "" : "s",
                  doc.at("traceEvents").as_array().size());
      return 0;
    }
    std::printf("qdb_trace_check: %d finding(s)\n", g_findings);
    return 1;
  } catch (const qdb::Error& e) {
    std::fprintf(stderr, "qdb_trace_check: malformed document: %s\n", e.what());
    return 2;
  }
}
