// qdb_trace_check: schema and consistency checker for qdb_cli --trace dumps.
//
//   qdb_trace_check <trace.json> [--require-span <name>]...
//
// Validates the Chrome-trace document the CLI writes (ISSUE 5):
//
//   1. Top-level shape: "traceEvents" array, "displayTimeUnit" string, plus
//      the qdb extensions "summary" (array), "registry" (object) and
//      "prometheus" (string).  Extra top-level keys are legal in the
//      trace_event format — viewers ignore them — so embedding the metric
//      snapshot next to the events costs nothing.
//   2. Every event is a complete ("ph":"X") event carrying name / cat / ts /
//      dur / pid / tid with the right types and non-negative times.
//   3. Exact agreement: for every span name, the number of trace events
//      equals the "summary" count, which equals the registry histogram
//      `span.<name>` count, and the summed event durations equal the summary
//      total_us (with self_us <= total_us).  This is the acceptance
//      criterion that ties the trace layer to the metric layer — the two are
//      recorded independently on the hot path, so any drift is a bug.
//   4. The embedded Prometheus exposition declares each family's # TYPE at
//      most once and every sample line parses as `name{labels} value`.
//
// Exit status: 0 clean, 1 findings, 2 usage/io error.  Output lines are
// `trace.json: message` so CI annotations parse them.
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"

namespace {

using qdb::Json;

int g_findings = 0;
const char* g_path = "";

void fail(const std::string& message) {
  std::printf("%s: %s\n", g_path, message.c_str());
  ++g_findings;
}

/// Per-span-name tallies accumulated from the raw events.
struct NameTally {
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
};

std::map<std::string, NameTally> check_events(const Json& doc) {
  std::map<std::string, NameTally> by_name;
  const qdb::JsonArray& events = doc.at("traceEvents").as_array();
  std::size_t index = 0;
  for (const Json& ev : events) {
    const std::string where = "traceEvents[" + std::to_string(index++) + "]";
    if (!ev.is_object()) {
      fail(where + " is not an object");
      continue;
    }
    bool usable = true;
    for (const char* key : {"name", "cat", "ph"}) {
      if (!ev.contains(key) || !ev.at(key).is_string()) {
        fail(where + " missing string field \"" + key + "\"");
        usable = false;
      }
    }
    for (const char* key : {"ts", "dur", "pid", "tid"}) {
      if (!ev.contains(key) || !ev.at(key).is_number()) {
        fail(where + " missing numeric field \"" + key + "\"");
        usable = false;
      } else if (ev.at(key).as_int() < 0) {
        fail(where + " has negative \"" + key + "\"");
        usable = false;
      }
    }
    if (!usable) continue;
    if (ev.at("ph").as_string() != "X") {
      fail(where + " phase is \"" + ev.at("ph").as_string() +
           "\" (expected complete event \"X\")");
      continue;
    }
    if (ev.at("name").as_string().empty()) {
      fail(where + " has an empty span name");
      continue;
    }
    if (ev.contains("args") && !ev.at("args").is_object()) {
      fail(where + " \"args\" is not an object");
    }
    NameTally& tally = by_name[ev.at("name").as_string()];
    tally.count += 1;
    tally.total_us += static_cast<std::uint64_t>(ev.at("dur").as_int());
  }
  return by_name;
}

void check_summary_agreement(const Json& doc,
                             const std::map<std::string, NameTally>& by_name) {
  std::set<std::string> summarized;
  for (const Json& row : doc.at("summary").as_array()) {
    const std::string& name = row.at("name").as_string();
    summarized.insert(name);
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      fail("summary names span \"" + name + "\" with no trace events");
      continue;
    }
    const auto count = static_cast<std::uint64_t>(row.at("count").as_int());
    const auto total = static_cast<std::uint64_t>(row.at("total_us").as_int());
    const auto self = static_cast<std::uint64_t>(row.at("self_us").as_int());
    if (count != it->second.count) {
      fail("summary count for \"" + name + "\" is " + std::to_string(count) +
           " but the trace holds " + std::to_string(it->second.count) +
           " events");
    }
    if (total != it->second.total_us) {
      fail("summary total_us for \"" + name + "\" is " + std::to_string(total) +
           " but event durations sum to " + std::to_string(it->second.total_us));
    }
    if (self > total) {
      fail("summary self_us for \"" + name + "\" exceeds its total_us");
    }
  }
  for (const auto& [name, tally] : by_name) {
    (void)tally;
    if (summarized.count(name) == 0) {
      fail("span \"" + name + "\" appears in traceEvents but not in summary");
    }
  }
}

void check_registry_agreement(const Json& doc,
                              const std::map<std::string, NameTally>& by_name) {
  const Json& histograms = doc.at("registry").at("histograms");
  if (!histograms.is_object()) {
    fail("registry.histograms is not an object");
    return;
  }
  for (const auto& [name, tally] : by_name) {
    const std::string metric = "span." + name;
    if (!histograms.contains(metric)) {
      fail("registry has no histogram \"" + metric + "\" for a traced span");
      continue;
    }
    const auto registered =
        static_cast<std::uint64_t>(histograms.at(metric).at("count").as_int());
    if (registered != tally.count) {
      fail("registry histogram \"" + metric + "\" counts " +
           std::to_string(registered) + " but the trace holds " +
           std::to_string(tally.count) + " events (must agree exactly)");
    }
  }
}

void check_prometheus(const Json& doc) {
  const std::string& text = doc.at("prometheus").as_string();
  std::set<std::string> families;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::size_t name_end = line.find(' ', 7);
      const std::string family =
          line.substr(7, name_end == std::string::npos ? std::string::npos
                                                       : name_end - 7);
      if (!families.insert(family).second) {
        fail("prometheus line " + std::to_string(line_no) +
             ": duplicate # TYPE for family \"" + family + "\"");
      }
      continue;
    }
    if (line[0] == '#') continue;  // other comments are legal
    // Sample line: metric_name[{labels}] value
    std::size_t name_end = 0;
    while (name_end < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[name_end])) != 0 ||
            line[name_end] == '_' || line[name_end] == ':')) {
      ++name_end;
    }
    if (name_end == 0) {
      fail("prometheus line " + std::to_string(line_no) +
           " does not start with a metric name: " + line);
      continue;
    }
    std::size_t rest = name_end;
    if (rest < line.size() && line[rest] == '{') {
      // Labels: scan to the closing brace outside of quoted strings.
      bool in_quotes = false;
      bool escaped = false;
      ++rest;
      while (rest < line.size()) {
        const char c = line[rest];
        if (escaped) {
          escaped = false;
        } else if (c == '\\') {
          escaped = true;
        } else if (c == '"') {
          in_quotes = !in_quotes;
        } else if (c == '}' && !in_quotes) {
          break;
        }
        ++rest;
      }
      if (rest >= line.size()) {
        fail("prometheus line " + std::to_string(line_no) +
             " has an unterminated label set: " + line);
        continue;
      }
      ++rest;  // past '}'
    }
    if (rest >= line.size() || line[rest] != ' ') {
      fail("prometheus line " + std::to_string(line_no) +
           " is missing the value separator: " + line);
      continue;
    }
    const std::string value = line.substr(rest + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      fail("prometheus line " + std::to_string(line_no) +
           " has a non-numeric value \"" + value + "\"");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required_spans;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require-span" && i + 1 < argc) {
      required_spans.push_back(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: qdb_trace_check <trace.json> [--require-span <name>]...\n");
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "qdb_trace_check: more than one input file\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: qdb_trace_check <trace.json> [--require-span <name>]...\n");
    return 2;
  }
  g_path = path.c_str();

  Json doc;
  try {
    doc = Json::parse(qdb::read_file(path));
  } catch (const qdb::Error& e) {
    std::fprintf(stderr, "qdb_trace_check: %s\n", e.what());
    return 2;
  }

  try {
    // Top-level shape.
    if (!doc.contains("traceEvents") || !doc.at("traceEvents").is_array()) {
      fail("missing top-level \"traceEvents\" array");
    }
    if (!doc.contains("displayTimeUnit") ||
        !doc.at("displayTimeUnit").is_string()) {
      fail("missing top-level \"displayTimeUnit\" string");
    }
    if (!doc.contains("summary") || !doc.at("summary").is_array()) {
      fail("missing top-level \"summary\" array");
    }
    if (!doc.contains("registry") || !doc.at("registry").is_object()) {
      fail("missing top-level \"registry\" object");
    }
    if (!doc.contains("prometheus") || !doc.at("prometheus").is_string()) {
      fail("missing top-level \"prometheus\" string");
    }
    if (g_findings != 0) {
      std::printf("qdb_trace_check: %d finding(s)\n", g_findings);
      return 1;
    }

    const std::map<std::string, NameTally> by_name = check_events(doc);
    check_summary_agreement(doc, by_name);
    check_registry_agreement(doc, by_name);
    check_prometheus(doc);
    for (const std::string& name : required_spans) {
      if (by_name.count(name) == 0) {
        fail("required span \"" + name + "\" has no trace events");
      }
    }

    if (g_findings == 0) {
      std::printf("qdb_trace_check: %s clean (%zu span name%s, %zu events)\n",
                  path.c_str(), by_name.size(), by_name.size() == 1 ? "" : "s",
                  doc.at("traceEvents").as_array().size());
      return 0;
    }
    std::printf("qdb_trace_check: %d finding(s)\n", g_findings);
    return 1;
  } catch (const qdb::Error& e) {
    std::fprintf(stderr, "qdb_trace_check: malformed document: %s\n", e.what());
    return 2;
  }
}
