// qdb_lint: project-specific source checker (ISSUE 3).
//
// clang-tidy covers general C++ hygiene; this tool enforces the handful of
// *QDockBank-specific* conventions that keep the reproduction deterministic
// and its artifacts durable, none of which a generic linter knows about:
//
//   raw-random          rand()/srand()/time() — all randomness must flow
//                       through qdb::Rng so every run is seed-reproducible.
//   stdout-in-library   std::cout / printf in src/ — library code returns
//                       data; only bench/examples/tools own the terminal.
//   missing-pragma-once headers without `#pragma once`.
//   naked-new-delete    raw new/delete — ownership is containers and
//                       values in this codebase (`= delete` and
//                       `operator new/delete` declarations are exempt).
//   non-atomic-write    write_file()/std::ofstream in src/ — dataset and
//                       checkpoint artifacts must go through
//                       write_file_atomic so a crash never leaves a
//                       truncated file a resume would then trust.
//   omp-pragma          `#pragma omp` outside common/parallel.h — all
//                       fan-out goes through the parallel.h wrappers so the
//                       TSan build can swap in its std::thread backend.
//   raw-socket          direct socket()/bind()/accept()/listen()/connect()
//                       calls (bare or `::`-qualified) — socket plumbing
//                       lives in src/serve/net_socket.* (allowlisted), the
//                       one place that owns fds, EINTR loops and shutdown
//                       semantics.
//   stderr-in-library   std::cerr / fprintf(stderr, ...) in src/ outside
//                       src/obs/ — diagnostics are structured obs::log
//                       events (ISSUE 5); the logger's default sink in
//                       src/obs/log.cpp is the one sanctioned stderr
//                       writer, so levels, formats and capture stay in
//                       one place.
//   sleep-in-library    sleep_for/sleep_until/usleep/nanosleep in src/
//                       outside src/common/ — library code takes time from
//                       the injectable qdb::Clock (common/clock.h owns the
//                       one real sleep) so lease/backoff tests run on a
//                       ManualClock instead of wall-clock time.
//   simd-intrinsics     raw AVX2 spellings (immintrin.h, _mm256*, __m256*)
//                       outside src/quantum/kernels.* (allowlisted) — one
//                       surface to audit for the QDB_NO_AVX2 fallback and
//                       non-x86 ports.
//   raw-traceparent     the quoted W3C context-header literal in src/ —
//                       src/obs/trace.h (allowlisted) owns the header name
//                       (obs::kTraceparentHeader) and its strict
//                       parse/format rules, so strictness cannot fork
//                       between hand-rolled copies.  Scans raw text: the
//                       banned spelling is a string literal, which the
//                       stripper removes from code.
//
// The scanner core (comment/string stripping, token-boundary matching, tree
// walking, allowlist machinery) lives in tools/scan_util.h, shared with
// qdb_analyze; this header re-exports it under qdb::lint so existing callers
// (tests, the CLI) see one coherent API.  Prose like "the new atom" or a
// pattern string "rand(" never trips a rule, and findings can be suppressed
// per (file, rule) via an allowlist whose unused entries are themselves
// reported so suppressions cannot go stale silently.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "tools/scan_util.h"

namespace qdb::lint {

using qdb::scan::AllowEntry;
using qdb::scan::Diagnostic;
using qdb::scan::apply_allowlist;
using qdb::scan::format_diagnostic;
using qdb::scan::parse_allowlist;
using qdb::scan::strip_comments_and_strings;

/// Lint a single translation unit.  `relpath` decides rule applicability
/// (library-only rules fire iff the first path component is "src").
std::vector<Diagnostic> lint_source(const std::string& relpath, const std::string& text);

/// Walk `root`/`dir` for each dir, linting every .h/.cpp file.  Directories
/// whose name ends in "_fixtures" (lint_fixtures, analyze_fixtures) are
/// skipped so test fixtures with deliberate violations never fail the
/// repo-wide gate.  Results are sorted by path then line for deterministic
/// output.
std::vector<Diagnostic> lint_tree(const std::filesystem::path& root,
                                  const std::vector<std::string>& dirs);

}  // namespace qdb::lint
