// qdb_analyze CLI: architecture conformance + lock hygiene (ISSUE 8).
//
//   qdb_analyze [--root <dir>] [--allow <file>] [--graph <out.dot>] [dir...]
//
// Default scan set is src/ tests/ bench/ examples/ tools/ under --root
// (default: the current directory).  `--graph` additionally writes the
// module-level include DAG as a Graphviz digraph (layers ranked bottom-up)
// and does not affect the exit status.  Exit status: 0 clean, 1 findings
// (or stale allowlist entries), 2 usage error.  Output lines are
// `file:line: [rule] message` so editors and CI annotations parse them.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/qdb_analyze.h"

int main(int argc, char** argv) {
  using namespace qdb::analyze;
  std::string root = ".";
  std::string allow_path;
  std::string graph_path;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allow" && i + 1 < argc) {
      allow_path = argv[++i];
    } else if (arg == "--graph" && i + 1 < argc) {
      graph_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: qdb_analyze [--root <dir>] [--allow <file>] "
                   "[--graph <out.dot>] [dir...]\n");
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "tests", "bench", "examples", "tools"};
  if (allow_path.empty()) {
    const std::string candidate = root + "/tools/qdb_analyze_allow.txt";
    if (std::ifstream(candidate).good()) allow_path = candidate;
  }

  std::vector<AllowEntry> allow;
  if (!allow_path.empty()) {
    std::ifstream in(allow_path);
    if (!in.good()) {
      std::fprintf(stderr, "qdb_analyze: cannot read allowlist %s\n",
                   allow_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    allow = parse_allowlist(buf.str());
  }

  if (!graph_path.empty()) {
    const std::string dot = graph_dot(build_include_graph(root, dirs));
    std::ofstream out(graph_path, std::ios::binary | std::ios::trunc);
    out << dot;
    if (!out.good()) {
      std::fprintf(stderr, "qdb_analyze: cannot write graph %s\n",
                   graph_path.c_str());
      return 2;
    }
    std::printf("qdb_analyze: wrote %s\n", graph_path.c_str());
  }

  std::vector<AllowEntry> unused;
  const std::vector<Diagnostic> diags =
      apply_allowlist(analyze_tree(root, dirs), allow, &unused);

  for (const Diagnostic& d : diags) {
    std::printf("%s\n", format_diagnostic(d).c_str());
  }
  for (const AllowEntry& e : unused) {
    std::printf("%s: [stale-allowlist] entry '%s %s' matched nothing — remove it\n",
                allow_path.c_str(), e.file.c_str(), e.rule.c_str());
  }
  if (diags.empty() && unused.empty()) {
    std::printf("qdb_analyze: clean (%zu allowlist entries)\n", allow.size());
    return 0;
  }
  std::printf("qdb_analyze: %zu finding(s), %zu stale allowlist entr%s\n",
              diags.size(), unused.size(), unused.size() == 1 ? "y" : "ies");
  return 1;
}
