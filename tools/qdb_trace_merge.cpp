// qdb_trace_merge: join N per-process `qdb_cli --trace` dumps into one
// Chrome trace (ISSUE 10).
//
//   qdb_trace_merge <out.json> <in.json> [<in.json>...]
//
// Each input is a single-process dump (the shape qdb_trace_check validates):
// "traceEvents" plus the qdb extensions "summary" / "registry" and an
// optional "process" {pid, name} identity stamped by the CLI.  The merge
//
//   * rewrites every event's pid to the input's 1-based position, so each
//     process renders as its own lane in a trace viewer regardless of OS pid
//     collisions (containers routinely hand every process pid 1);
//   * hoists each input's summary and registry into a "processes" array
//     entry {pid, name, summary, registry}, keyed by the rewritten pid, so
//     the per-process trace==histogram agreement stays checkable after the
//     merge (qdb_trace_check --merge re-verifies it per lane);
//   * leaves the distributed-tracing fields ("trace"/"span"/"parent")
//     untouched — span ids are derived from trace context, not pids, which
//     is exactly what makes cross-process parent references survive the pid
//     rewrite.
//
// After merging, every non-root "parent" reference must resolve to a span id
// somewhere in the merged set: a worker's orchestrate.job span parents to
// the coordinator's orchestrate.lease span, and that edge only exists once
// both dumps are in the same document.  Unresolved parents are reported and
// exit 1 — a merge that silently drops the cross-process edges it exists to
// create would be worse than no merge.
//
// Exit status: 0 merged clean, 1 unresolved parents, 2 usage/io/parse error.
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"

namespace {

using qdb::Json;

bool parse_hex_id(const std::string& text, std::uint64_t* out) {
  if (text.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : text) {
    std::uint64_t d = 0;
    if (c >= '0' && c <= '9') {
      d = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | d;
  }
  *out = v;
  return true;
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: qdb_trace_merge <out.json> <in.json> [<in.json>...]\n");
    return 2;
  }
  const std::string out_path = argv[1];

  Json merged_events = Json::array();
  Json processes = Json::array();
  std::set<std::uint64_t> span_ids;
  // parent id -> (event name, input path) for the unresolved report.
  std::vector<std::pair<std::uint64_t, std::string>> parent_refs;
  std::size_t event_total = 0;

  for (int i = 2; i < argc; ++i) {
    const std::string in_path = argv[i];
    const int pid = i - 1;  // 1-based lane per input
    Json doc;
    try {
      doc = Json::parse(qdb::read_file(in_path));
    } catch (const qdb::Error& e) {
      std::fprintf(stderr, "qdb_trace_merge: %s: %s\n", in_path.c_str(),
                   e.what());
      return 2;
    }
    try {
      if (!doc.contains("traceEvents") || !doc.at("traceEvents").is_array()) {
        throw qdb::Error("missing \"traceEvents\" array");
      }
      std::string name = basename_of(in_path);
      if (doc.contains("process") && doc.at("process").is_object() &&
          doc.at("process").contains("name") &&
          doc.at("process").at("name").is_string() &&
          !doc.at("process").at("name").as_string().empty()) {
        name = doc.at("process").at("name").as_string();
      }
      for (const Json& ev : doc.at("traceEvents").as_array()) {
        Json copy = ev;  // value-type JSON: cheap enough at trace-dump scale
        copy.set("pid", pid);
        if (ev.is_object() && ev.contains("span") &&
            ev.at("span").is_string()) {
          std::uint64_t span = 0;
          if (parse_hex_id(ev.at("span").as_string(), &span)) {
            span_ids.insert(span);
          }
        }
        if (ev.is_object() && ev.contains("parent") &&
            ev.at("parent").is_string()) {
          std::uint64_t parent = 0;
          if (parse_hex_id(ev.at("parent").as_string(), &parent)) {
            const std::string who =
                (ev.contains("name") && ev.at("name").is_string()
                     ? ev.at("name").as_string()
                     : "?") +
                " (" + in_path + ")";
            parent_refs.emplace_back(parent, who);
          }
        }
        merged_events.push_back(std::move(copy));
        ++event_total;
      }
      Json entry = Json::object();
      entry.set("pid", pid);
      entry.set("name", name);
      entry.set("summary", doc.contains("summary") ? doc.at("summary")
                                                   : Json::array());
      entry.set("registry", doc.contains("registry") ? doc.at("registry")
                                                     : Json::object());
      processes.push_back(std::move(entry));
    } catch (const qdb::Error& e) {
      std::fprintf(stderr, "qdb_trace_merge: %s: %s\n", in_path.c_str(),
                   e.what());
      return 2;
    }
  }

  int unresolved = 0;
  for (const auto& [parent, who] : parent_refs) {
    if (span_ids.count(parent) == 0) {
      std::fprintf(stderr,
                   "qdb_trace_merge: unresolved parent reference from %s\n",
                   who.c_str());
      ++unresolved;
    }
  }

  Json out = Json::object();
  out.set("traceEvents", std::move(merged_events));
  out.set("displayTimeUnit", "ms");
  out.set("merged", true);
  out.set("processes", std::move(processes));
  try {
    qdb::write_file_atomic(out_path, out.dump() + "\n");
  } catch (const qdb::Error& e) {
    std::fprintf(stderr, "qdb_trace_merge: %s\n", e.what());
    return 2;
  }

  std::printf("qdb_trace_merge: %s <- %d process(es), %zu events, "
              "%zu span ids, %d unresolved parent(s)\n",
              out_path.c_str(), argc - 2, event_total, span_ids.size(),
              unresolved);
  return unresolved == 0 ? 0 : 1;
}
