// qdb_analyze: architecture conformance + lock hygiene (ISSUE 8).
//
// qdb_lint enforces line-level conventions; this tool enforces the two
// structural properties the repo's concurrency story rests on:
//
// 1. Include-graph conformance.  Every `#include "mod/..."` between src/
//    modules is an edge in the include DAG.  The DAG must match the declared
//    layer map (see kLayers in qdb_analyze.cpp and DESIGN.md §13): a module
//    may include modules in strictly lower layers or its own layer, never a
//    higher one (`layer-violation`), file-level include cycles are hard
//    errors even within a layer (`include-cycle`), and a src/ module absent
//    from the map is itself an error (`unknown-module`) so new directories
//    must be placed deliberately.
//
// 2. Lock hygiene.  Token rules over the stripped source:
//      naked-lock           .lock()/.unlock() calls outside the RAII types
//                           in src/common/sync.h (src/ only)
//      cv-wait-no-predicate a condition-variable wait without a predicate
//                           argument (src/ only; qdb::CondVar makes the
//                           predicate mandatory, this catches regressions
//                           to the raw API)
//      thread-detach        std::thread::detach() — banned repo-wide; every
//                           thread must be joined so shutdown is provable
//      unannotated-mutex    raw std::mutex / std::condition_variable /
//                           std::lock_guard / std::unique_lock /
//                           std::scoped_lock / std::shared_mutex in src/
//                           outside src/common/sync.h — all locking goes
//                           through the annotated qdb::Mutex wrappers so
//                           Clang's -Wthread-safety sees every acquisition
//
// Shares the scanner core (tools/scan_util.h) and the per-(file,rule)
// allowlist + stale-entry machinery with qdb_lint; the repo gate runs as a
// ctest (qdb_analyze.repo) and in the CI lint job.
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "tools/scan_util.h"

namespace qdb::analyze {

using qdb::scan::AllowEntry;
using qdb::scan::Diagnostic;
using qdb::scan::apply_allowlist;
using qdb::scan::format_diagnostic;
using qdb::scan::parse_allowlist;

/// One parsed project-local include directive.
struct IncludeEdge {
  std::string from_file;  ///< includer, relative path ("src/serve/server.cpp")
  std::string to_file;    ///< included header as written ("serve/server.h")
  int line = 0;           ///< 1-based line of the #include
};

/// The include graph of a source tree: per-file edges plus the module each
/// file belongs to (first path component under src/).
struct IncludeGraph {
  std::vector<IncludeEdge> edges;              ///< sorted by (from, line)
  std::vector<std::string> files;              ///< all scanned files, sorted
  std::map<std::string, std::string> module_of;  ///< file -> module ("" = not src/)
};

/// Layer number for a src/ module, or -1 when the module is not in the
/// declared layer map.  Layer 0 is the bottom (common); higher layers may
/// include lower ones and peers in the same layer, never upward.
int layer_of(const std::string& module);

/// All modules in the declared layer map, sorted by (layer, name) — the
/// ranked rows of the --graph output.
std::vector<std::pair<std::string, int>> layer_map();

/// Parse every project-local `#include "..."` under `root`/`dirs`.
/// System includes (<...>) are ignored.  Include paths are read from the
/// RAW text (the stripper blanks string literal contents — include paths
/// included), with the stripped text consulted only to skip directives that
/// sit inside block comments.
IncludeGraph build_include_graph(const std::filesystem::path& root,
                                 const std::vector<std::string>& dirs);

/// Architecture rules over a graph: include-cycle (file-level DFS),
/// layer-violation (module edge upward in the layer map), unknown-module.
std::vector<Diagnostic> check_architecture(const IncludeGraph& graph);

/// Lock-hygiene token rules for one translation unit (see header comment
/// for the rule set and scoping).
std::vector<Diagnostic> check_lock_hygiene(const std::string& relpath,
                                           const std::string& text);

/// Full analysis of a tree: architecture rules + lock hygiene over every
/// .h/.cpp file.  Directories ending in "_fixtures" are skipped (same walker
/// as qdb_lint).  Sorted by (file, line, rule).
std::vector<Diagnostic> analyze_tree(const std::filesystem::path& root,
                                     const std::vector<std::string>& dirs);

/// The include DAG as a Graphviz digraph: one node per module, `rank=same`
/// rows per layer, de-duplicated module edges; unknown modules are rendered
/// in red so drift is visible in the picture too.
std::string graph_dot(const IncludeGraph& graph);

}  // namespace qdb::analyze
