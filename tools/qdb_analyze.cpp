#include "tools/qdb_analyze.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "tools/scan_util.h"

namespace qdb::analyze {

namespace {

using qdb::scan::LineIndex;
using qdb::scan::first_component_is;
using qdb::scan::has_dir_prefix;
using qdb::scan::is_ident_char;
using qdb::scan::skip_ws;

/// The declared layer map.  Lower layer = closer to the bottom; a module may
/// include its own layer and below, never above.  Kept here (not in a config
/// file) so changing the architecture is a reviewed code change, and the
/// rationale stays next to the data:
///
///   0  common       leaf utilities: error, json, rng, clock, sync, contracts
///   1  obs          metrics/trace/log — everything above may instrument
///   2  geom quantum lattice optimize transpile structure   domain cores
///   3  vqe data dock baseline core    pipelines over the domain cores
///   4  screen       virtual-screening funnel over dock (grids, libraries)
///   5  store        content-addressed artifact store over data records
///   6  serve        HTTP service over the store (mounts /screen on screen)
///   7  orchestrate  distributed coordination over serve + store
///
/// This deviates from the first sketch in ISSUE 8 (which put obs beside
/// store and omitted structure/vqe): the lattice/quantum/dock layers log and
/// count through obs, so obs must sit low; see DESIGN.md §13.
struct LayerEntry {
  const char* module;
  int layer;
};
constexpr LayerEntry kLayers[] = {
    {"common", 0},   {"obs", 1},      {"geom", 2},      {"quantum", 2},
    {"lattice", 2},  {"optimize", 2}, {"transpile", 2}, {"structure", 2},
    {"vqe", 3},      {"data", 3},     {"dock", 3},      {"baseline", 3},
    {"core", 3},     {"screen", 4},   {"store", 5},     {"serve", 6},
    {"orchestrate", 7},
};

/// Module of a path under the analysis root: "src/serve/server.cpp" ->
/// "serve"; anything not under src/ (tools, tests, bench) -> "".
std::string module_of_path(const std::string& relpath) {
  if (!first_component_is(relpath, "src")) return "";
  const std::size_t start = relpath.find('/');
  if (start == std::string::npos) return "";
  const std::size_t end = relpath.find('/', start + 1);
  if (end == std::string::npos) return "";
  return relpath.substr(start + 1, end - start - 1);
}

/// Module of an include target as written: "serve/http.h" -> "serve" iff
/// the first component names a mapped (or src-resident) module.
std::string module_of_include(const std::string& target) {
  const std::size_t slash = target.find('/');
  if (slash == std::string::npos) return "";
  return target.substr(0, slash);
}

/// True when the member-call token at [pos, pos+len) is written `.tok` or
/// `->tok` (the only spellings that can be the banned member functions).
bool member_call_token(const std::string& text, std::size_t pos, std::size_t len) {
  if (pos == 0) return false;
  const char prev = text[pos - 1];
  const bool member = prev == '.' || (prev == '>' && pos > 1 && text[pos - 2] == '-');
  if (!member) return false;
  const std::size_t after = pos + len;
  if (after < text.size() && is_ident_char(text[after])) return false;
  const std::size_t paren = skip_ws(text, after);
  return paren < text.size() && text[paren] == '(';
}

/// Count the arguments of the call whose '(' is at `open` (balanced parens,
/// brackets and braces; commas at top level separate arguments).  Returns -1
/// when the call is unterminated (truncated file).
int count_call_args(const std::string& text, std::size_t open) {
  int depth = 0;
  int commas = 0;
  bool any_tokens = false;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) return any_tokens ? commas + 1 : 0;
    } else if (depth == 1) {
      if (c == ',') ++commas;
      else if (!std::isspace(static_cast<unsigned char>(c))) any_tokens = true;
    }
  }
  return -1;
}

/// Find `needle` as a qualified-name token: the character before must not be
/// an identifier character or ':' (so `xstd::mutex` and `mystd::mutex` and
/// `::std::mutex`'s inner match are rejected) and the character after must
/// not be an identifier character (so `std::condition_variable` does not
/// match inside `std::condition_variable_any`).
template <typename Fn>
void for_each_qualified_token(const std::string& text, const std::string& needle, Fn&& fn) {
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + 1)) {
    if (pos > 0 && (is_ident_char(text[pos - 1]) || text[pos - 1] == ':')) continue;
    const std::size_t after = pos + needle.size();
    if (after < text.size() && is_ident_char(text[after])) continue;
    fn(pos);
  }
}

}  // namespace

int layer_of(const std::string& module) {
  for (const LayerEntry& e : kLayers) {
    if (module == e.module) return e.layer;
  }
  return -1;
}

std::vector<std::pair<std::string, int>> layer_map() {
  std::vector<std::pair<std::string, int>> out;
  for (const LayerEntry& e : kLayers) out.emplace_back(e.module, e.layer);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second < b.second : a.first < b.first;
  });
  return out;
}

IncludeGraph build_include_graph(const std::filesystem::path& root,
                                 const std::vector<std::string>& dirs) {
  IncludeGraph graph;
  qdb::scan::for_each_source_file(root, dirs, [&](const std::string& relpath,
                                                  const std::string& text) {
    graph.files.push_back(relpath);
    graph.module_of[relpath] = module_of_path(relpath);
    // Include paths live inside string literals, which the stripper blanks;
    // parse them from the RAW text and use the stripped text only to reject
    // directives sitting inside block comments.
    const std::string code = qdb::scan::strip_comments_and_strings(text);
    const LineIndex lines(text);
    for (std::size_t pos = text.find("#include"); pos != std::string::npos;
         pos = text.find("#include", pos + 1)) {
      if (code.compare(pos, 8, "#include") != 0) continue;  // commented out
      std::size_t q = skip_ws(text, pos + 8);
      if (q >= text.size() || text[q] != '"') continue;  // <...> or malformed
      const std::size_t close = text.find('"', q + 1);
      if (close == std::string::npos) continue;
      IncludeEdge edge;
      edge.from_file = relpath;
      edge.to_file = text.substr(q + 1, close - q - 1);
      edge.line = lines.line_of(pos);
      graph.edges.push_back(std::move(edge));
    }
  });
  std::sort(graph.files.begin(), graph.files.end());
  std::sort(graph.edges.begin(), graph.edges.end(),
            [](const IncludeEdge& a, const IncludeEdge& b) {
              if (a.from_file != b.from_file) return a.from_file < b.from_file;
              return a.line != b.line ? a.line < b.line
                                      : a.to_file < b.to_file;
            });
  return graph;
}

namespace {

/// Resolve an include target to a scanned file: as written from the root
/// ("tools/scan_util.h"), under src/ (the src include convention), or next
/// to the includer (tests' same-directory fixtures).  Empty when the target
/// is outside the scanned tree (system-adjacent or generated).
std::string resolve_target(const std::set<std::string>& files,
                           const std::string& from_file, const std::string& target) {
  if (files.count(target) != 0) return target;
  const std::string under_src = "src/" + target;
  if (files.count(under_src) != 0) return under_src;
  const std::size_t slash = from_file.rfind('/');
  if (slash != std::string::npos) {
    const std::string sibling = from_file.substr(0, slash + 1) + target;
    if (files.count(sibling) != 0) return sibling;
  }
  return "";
}

}  // namespace

std::vector<Diagnostic> check_architecture(const IncludeGraph& graph) {
  std::vector<Diagnostic> diags;
  const std::set<std::string> files(graph.files.begin(), graph.files.end());

  // unknown-module: every src/ module must appear in the layer map, so a new
  // top-level directory is a deliberate, reviewed placement.
  std::set<std::string> reported_unknown;
  for (const std::string& file : graph.files) {
    const std::string mod = graph.module_of.at(file);
    if (mod.empty() || layer_of(mod) >= 0) continue;
    if (!reported_unknown.insert(mod).second) continue;
    diags.push_back({file, 1, "unknown-module",
                     "module 'src/" + mod +
                         "' is not in the declared layer map — add it to "
                         "kLayers in tools/qdb_analyze.cpp (and DESIGN.md §13) "
                         "at a deliberate layer"});
  }

  // layer-violation: a src/ file may include modules at its own layer or
  // below, never above.
  for (const IncludeEdge& e : graph.edges) {
    const std::string from_mod = graph.module_of.at(e.from_file);
    if (from_mod.empty()) continue;  // tools/tests/bench see every layer
    const int from_layer = layer_of(from_mod);
    if (from_layer < 0) continue;  // already reported as unknown-module
    const std::string to_mod = module_of_include(e.to_file);
    if (to_mod.empty() || to_mod == from_mod) continue;
    const int to_layer = layer_of(to_mod);
    if (to_layer < 0) {
      // An include of an unmapped module from src/ is drift even if the
      // directory itself was never scanned (e.g. a stale path).
      if (files.count("src/" + e.to_file) == 0) continue;  // not a src module
      continue;  // scanned files already produced unknown-module above
    }
    if (to_layer > from_layer) {
      diags.push_back(
          {e.from_file, e.line, "layer-violation",
           "'" + from_mod + "' (layer " + std::to_string(from_layer) +
               ") includes '" + e.to_file + "' from '" + to_mod + "' (layer " +
               std::to_string(to_layer) +
               ") — dependencies must point down the layer map (DESIGN.md §13)"});
    }
  }

  // include-cycle: file-level DFS over resolved edges.  Runs on the full
  // graph (not just src/) so a tools/tests header cycle is caught too.
  // Same-layer module cycles (quantum <-> transpile) are legal only while
  // the *files* stay acyclic, which is exactly what this enforces.
  std::unordered_map<std::string, std::vector<const IncludeEdge*>> adj;
  for (const IncludeEdge& e : graph.edges) {
    const std::string target = resolve_target(files, e.from_file, e.to_file);
    if (!target.empty() && target != e.from_file) adj[e.from_file].push_back(&e);
  }
  // 0 = unvisited, 1 = on the current DFS path, 2 = done.
  std::unordered_map<std::string, int> color;
  std::vector<std::pair<std::string, const IncludeEdge*>> path;  // (file, edge taken)
  // Iterative DFS so a deep include chain cannot overflow the stack.
  struct Frame {
    std::string file;
    std::size_t next = 0;
  };
  for (const std::string& start : graph.files) {
    if (color[start] != 0) continue;
    std::vector<Frame> stack;
    stack.push_back({start, 0});
    color[start] = 1;
    while (!stack.empty()) {
      Frame& top = stack.back();
      const auto it = adj.find(top.file);
      const std::size_t fanout = it == adj.end() ? 0 : it->second.size();
      if (top.next >= fanout) {
        color[top.file] = 2;
        stack.pop_back();
        if (!path.empty()) path.pop_back();
        continue;
      }
      const IncludeEdge* e = it->second[top.next++];
      const std::string target = resolve_target(files, e->from_file, e->to_file);
      if (color[target] == 1) {
        // Back edge: reconstruct the cycle from the DFS path.
        std::string chain = target;
        bool in_cycle = false;
        for (const auto& [file, edge] : path) {
          if (file == target) in_cycle = true;
          (void)edge;
          if (in_cycle) chain += " -> " + file;
        }
        chain += " -> " + e->from_file + " -> " + target;
        // The path above starts at `target`, so drop the duplicated head.
        const std::string head = target + " -> " + target;
        if (chain.compare(0, head.size(), head) == 0) {
          chain = chain.substr(target.size() + 4);
        }
        diags.push_back({e->from_file, e->line, "include-cycle",
                         "include cycle: " + chain});
      } else if (color[target] == 0) {
        color[target] = 1;
        path.emplace_back(top.file, e);
        stack.push_back({target, 0});
      }
    }
  }

  qdb::scan::sort_diagnostics(diags);
  return diags;
}

std::vector<Diagnostic> check_lock_hygiene(const std::string& relpath,
                                           const std::string& text) {
  std::vector<Diagnostic> diags;
  const std::string code = qdb::scan::strip_comments_and_strings(text);
  const LineIndex lines(code);
  const bool library = first_component_is(relpath, "src");
  auto add = [&](std::size_t offset, const char* rule, std::string message) {
    diags.push_back({relpath, lines.line_of(offset), rule, std::move(message)});
  };

  // naked-lock: .lock()/.unlock() member calls in src/.  RAII guards
  // (qdb::MutexLock) are the only sanctioned acquisition pattern; the
  // wrapper internals in common/sync.h carry an allowlist entry.
  if (library) {
    for (const char* tok : {"lock", "unlock"}) {
      const std::string token = tok;
      for (std::size_t pos = code.find(token); pos != std::string::npos;
           pos = code.find(token, pos + 1)) {
        if (pos > 0 && is_ident_char(code[pos - 1])) continue;  // try_lock etc.
        if (!member_call_token(code, pos, token.size())) continue;
        add(pos, "naked-lock",
            std::string("naked .") + tok +
                "() — scope a qdb::MutexLock instead so the unlock is "
                "exception-safe and visible to Clang thread-safety analysis");
      }
    }
  }

  // cv-wait-no-predicate: condition-variable waits must carry a predicate.
  // `.wait(x)` (one argument) is the lost-wakeup-prone raw overload;
  // `.wait_for(x, dur)` / `.wait_until(x, tp)` without a third argument
  // return on spurious wakeups too.  qdb::CondVar's API makes the predicate
  // structural; this rule catches regressions to the raw types.
  if (library) {
    struct WaitRule {
      const char* token;
      int min_args;
    };
    for (const WaitRule& w : {WaitRule{"wait", 2}, WaitRule{"wait_for", 3},
                              WaitRule{"wait_until", 3}, WaitRule{"wait_for_ms", 3}}) {
      const std::string token = w.token;
      for (std::size_t pos = code.find(token); pos != std::string::npos;
           pos = code.find(token, pos + 1)) {
        if (pos > 0 && is_ident_char(code[pos - 1])) continue;
        if (!member_call_token(code, pos, token.size())) continue;
        const std::size_t open = skip_ws(code, pos + token.size());
        const int args = count_call_args(code, open);
        if (args < 0 || args >= w.min_args) continue;
        add(pos, "cv-wait-no-predicate",
            std::string(".") + w.token + "() without a predicate argument — " +
                "spurious wakeups and missed notifications are silent here; "
                "pass the condition as a lambda (qdb::CondVar requires it)");
      }
    }
  }

  // thread-detach: banned repo-wide.  A detached thread cannot be joined, so
  // shutdown order becomes unprovable and TSan loses the happens-before edge
  // every drain invariant relies on.
  {
    const std::string token = "detach";
    for (std::size_t pos = code.find(token); pos != std::string::npos;
         pos = code.find(token, pos + 1)) {
      if (pos > 0 && is_ident_char(code[pos - 1])) continue;
      if (!member_call_token(code, pos, token.size())) continue;
      add(pos, "thread-detach",
          ".detach() — every thread must be joined (owning RAII member or "
          "explicit join in stop()) so shutdown is provable");
    }
  }

  // unannotated-mutex: raw standard sync primitives in src/.  All locking
  // goes through the annotated wrappers in common/sync.h so the Clang
  // thread-safety CI job sees every acquisition; sync.h itself carries the
  // allowlist entry (it is the sanctioned home of the raw types).
  if (library) {
    for (const char* tok :
         {"std::mutex", "std::timed_mutex", "std::recursive_mutex",
          "std::shared_mutex", "std::condition_variable",
          "std::condition_variable_any", "std::lock_guard", "std::unique_lock",
          "std::scoped_lock"}) {
      const std::string token = tok;
      for_each_qualified_token(code, token, [&](std::size_t pos) {
        add(pos, "unannotated-mutex",
            std::string("raw ") + tok +
                " — use the annotated qdb::Mutex / qdb::MutexLock / "
                "qdb::CondVar wrappers (common/sync.h) so "
                "-Werror=thread-safety can check the lock discipline");
      });
    }
  }

  qdb::scan::sort_diagnostics(diags);
  return diags;
}

std::vector<Diagnostic> analyze_tree(const std::filesystem::path& root,
                                     const std::vector<std::string>& dirs) {
  std::vector<Diagnostic> all = check_architecture(build_include_graph(root, dirs));
  qdb::scan::for_each_source_file(
      root, dirs, [&](const std::string& relpath, const std::string& text) {
        std::vector<Diagnostic> diags = check_lock_hygiene(relpath, text);
        all.insert(all.end(), diags.begin(), diags.end());
      });
  qdb::scan::sort_diagnostics(all);
  return all;
}

std::string graph_dot(const IncludeGraph& graph) {
  std::ostringstream out;
  out << "digraph qdb_include_graph {\n";
  out << "  rankdir=BT;\n";
  out << "  node [shape=box, fontname=\"Helvetica\"];\n";
  // Collect the modules that actually appear (as includer or include target
  // of a src/ file), so the picture tracks the tree, not the map.
  std::set<std::string> present;
  std::set<std::pair<std::string, std::string>> module_edges;
  for (const auto& [file, mod] : graph.module_of) {
    (void)file;
    if (!mod.empty()) present.insert(mod);
  }
  for (const IncludeEdge& e : graph.edges) {
    const auto it = graph.module_of.find(e.from_file);
    const std::string from_mod = it == graph.module_of.end() ? "" : it->second;
    if (from_mod.empty()) continue;
    present.insert(from_mod);
    const std::string to_mod = module_of_include(e.to_file);
    if (to_mod.empty() || layer_of(to_mod) < 0) continue;
    present.insert(to_mod);
    if (to_mod != from_mod) module_edges.emplace(from_mod, to_mod);
  }
  // One rank row per layer (bottom-up thanks to rankdir=BT); unknown modules
  // get their own red row at the top so drift is visible in the picture.
  int max_layer = 0;
  for (const auto& [mod, layer] : layer_map()) {
    (void)mod;
    max_layer = std::max(max_layer, layer);
  }
  for (int layer = 0; layer <= max_layer; ++layer) {
    std::string row;
    for (const auto& [mod, mod_layer] : layer_map()) {
      if (mod_layer != layer || present.count(mod) == 0) continue;
      row += " \"" + mod + "\";";
    }
    if (!row.empty()) {
      out << "  { rank=same;" << row << " }  // layer " << layer << "\n";
    }
  }
  for (const std::string& mod : present) {
    if (layer_of(mod) < 0) {
      out << "  \"" << mod << "\" [color=red, fontcolor=red];  // unknown module\n";
    }
  }
  for (const auto& [from, to] : module_edges) {
    out << "  \"" << from << "\" -> \"" << to << "\";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace qdb::analyze
