// Shared comment/string-aware scanner core for the project's source checkers
// (ISSUE 8).  qdb_lint (convention rules) and qdb_analyze (architecture +
// lock-hygiene rules) both need the same substrate: strip comments and
// literals without disturbing line numbers, match identifiers on token
// boundaries, walk the source tree deterministically, and run findings
// through a per-(file,rule) allowlist whose stale entries are themselves
// findings.  Factoring it here keeps the two tools byte-for-byte consistent
// about what counts as code versus prose.
//
// Everything is header-only and dependency-free (std only) so either tool
// can be built standalone in CI with a bare `g++ file.cpp`.
#pragma once

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace qdb::scan {

/// One finding: `file:line: [rule] message`.
struct Diagnostic {
  std::string file;  ///< path relative to the scan root, '/'-separated
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;
};

/// One allowlist line: suppress `rule` in `file` (exact relative path).
struct AllowEntry {
  std::string file;
  std::string rule;
};

inline bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Replace comments and string/char literal contents with spaces, preserving
/// newlines (so byte offsets map to the same line numbers).  Handles //, /**/,
/// "..." with escapes, '...' (but not digit separators like 1'000), and raw
/// strings R"delim(...)delim".
inline std::string strip_comments_and_strings(const std::string& text) {
  std::string out = text;
  const std::size_t n = text.size();
  std::size_t i = 0;
  auto blank = [&](std::size_t pos) {
    if (out[pos] != '\n') out[pos] = ' ';
  };
  while (i < n) {
    const char c = text[i];
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') blank(i++);
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      blank(i++);
      blank(i++);
      while (i < n && !(text[i] == '*' && i + 1 < n && text[i + 1] == '/')) blank(i++);
      if (i < n) blank(i++);  // '*'
      if (i < n) blank(i++);  // '/'
    } else if (c == '"' && i > 0 && text[i - 1] == 'R') {
      // Raw string literal R"delim( ... )delim".  Find the delimiter, then
      // scan for the closing sequence; newlines inside are preserved.
      std::size_t p = i + 1;
      std::string delim;
      while (p < n && text[p] != '(') delim += text[p++];
      const std::string close = ")" + delim + "\"";
      std::size_t end = text.find(close, p);
      end = (end == std::string::npos) ? n : end + close.size();
      while (i < end && i < n) blank(i++);
    } else if (c == '"') {
      blank(i++);
      while (i < n && text[i] != '"' && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n) blank(i++);
        blank(i++);
      }
      if (i < n && text[i] == '"') blank(i++);
    } else if (c == '\'' && (i == 0 || !is_ident_char(text[i - 1]))) {
      // Char literal — but not a digit separator (1'000'000), which follows
      // an identifier character.
      blank(i++);
      while (i < n && text[i] != '\'' && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n) blank(i++);
        blank(i++);
      }
      if (i < n && text[i] == '\'') blank(i++);
    } else {
      ++i;
    }
  }
  return out;
}

/// Map byte offset -> 1-based line number.
class LineIndex {
 public:
  explicit LineIndex(const std::string& text) {
    starts_.push_back(0);
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\n') starts_.push_back(i + 1);
    }
  }
  int line_of(std::size_t offset) const {
    const auto it = std::upper_bound(starts_.begin(), starts_.end(), offset);
    return static_cast<int>(it - starts_.begin());
  }

 private:
  std::vector<std::size_t> starts_;
};

/// Is the identifier token at [pos, pos+len) free-standing?  Qualified
/// (`foo::tok`), member (`x.tok`, `p->tok`) and substring (`my_tok`, `tokx`)
/// occurrences are rejected — except a `std::` qualifier, which `allow_std`
/// lets through (std::rand is still rand).
inline bool standalone_token(const std::string& text, std::size_t pos, std::size_t len,
                             bool allow_std) {
  if (pos > 0) {
    const char prev = text[pos - 1];
    if (is_ident_char(prev) || prev == '.') return false;
    if (prev == '>' && pos > 1 && text[pos - 2] == '-') return false;
    if (prev == ':') {
      const bool std_qualified = pos >= 5 && text.compare(pos - 5, 5, "std::") == 0;
      return allow_std && std_qualified;
    }
  }
  const std::size_t after = pos + len;
  return after >= text.size() || !is_ident_char(text[after]);
}

/// First non-space char at or after `pos` (same line semantics not needed —
/// a call's '(' may legally sit on the next line).
inline std::size_t skip_ws(const std::string& text, std::size_t pos) {
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])) != 0) ++pos;
  return pos;
}

/// Word immediately before `pos`, skipping whitespace (for `operator new`).
inline std::string previous_word(const std::string& text, std::size_t pos) {
  while (pos > 0 && std::isspace(static_cast<unsigned char>(text[pos - 1])) != 0) --pos;
  std::size_t end = pos;
  while (pos > 0 && is_ident_char(text[pos - 1])) --pos;
  return text.substr(pos, end - pos);
}

inline char previous_nonspace(const std::string& text, std::size_t pos) {
  while (pos > 0 && std::isspace(static_cast<unsigned char>(text[pos - 1])) != 0) --pos;
  return pos > 0 ? text[pos - 1] : '\0';
}

/// For every standalone occurrence of `token`, call fn(offset).
template <typename Fn>
void for_each_token(const std::string& text, const std::string& token, bool allow_std,
                    Fn&& fn) {
  for (std::size_t pos = text.find(token); pos != std::string::npos;
       pos = text.find(token, pos + 1)) {
    if (standalone_token(text, pos, token.size(), allow_std)) fn(pos);
  }
}

/// True iff relpath starts with the directory prefix (e.g. "src/obs/").
inline bool has_dir_prefix(const std::string& relpath, const char* prefix) {
  return relpath.rfind(prefix, 0) == 0;
}

inline bool first_component_is(const std::string& relpath, const char* component) {
  const std::size_t slash = relpath.find('/');
  return relpath.compare(0, slash == std::string::npos ? relpath.size() : slash,
                         component) == 0;
}

inline bool is_header(const std::string& relpath) {
  return relpath.size() >= 2 && relpath.compare(relpath.size() - 2, 2, ".h") == 0;
}

/// Does this directory hold deliberate-violation test fixtures?  Any
/// directory whose name ends in "_fixtures" (lint_fixtures, analyze_fixtures)
/// is skipped by the tree walkers so fixtures never fail the repo gates.
inline bool is_fixture_dir(const std::string& dirname) {
  static const std::string kSuffix = "_fixtures";
  return dirname.size() >= kSuffix.size() &&
         dirname.compare(dirname.size() - kSuffix.size(), kSuffix.size(), kSuffix) == 0;
}

/// Walk `root`/`dir` for each dir and call fn(relpath, text) for every
/// .h/.cpp file, skipping *_fixtures directories.  Traversal order follows
/// the directory iterator; callers that need determinism sort their results
/// (the diagnostics sort below) rather than rely on walk order.
template <typename Fn>
void for_each_source_file(const std::filesystem::path& root,
                          const std::vector<std::string>& dirs, Fn&& fn) {
  namespace fs = std::filesystem;
  for (const std::string& dir : dirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (auto it = fs::recursive_directory_iterator(base);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && is_fixture_dir(it->path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cpp") continue;
      std::string relpath = fs::relative(it->path(), root).generic_string();
      std::ifstream in(it->path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      fn(relpath, buf.str());
    }
  }
}

/// Sort diagnostics by (file, line, rule) for deterministic output.
inline void sort_diagnostics(std::vector<Diagnostic>& diags) {
  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
}

/// Parse allowlist text: one `<path> <rule>` pair per line, `#` comments and
/// blank lines ignored; anything after the rule token is justification.
inline std::vector<AllowEntry> parse_allowlist(const std::string& text) {
  std::vector<AllowEntry> entries;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    AllowEntry e;
    if (fields >> e.file >> e.rule) entries.push_back(std::move(e));
  }
  return entries;
}

/// Drop diagnostics matched by the allowlist.  Entries that matched nothing
/// are appended to `unused` (if non-null) — stale suppressions are findings
/// too.
inline std::vector<Diagnostic> apply_allowlist(const std::vector<Diagnostic>& diags,
                                               const std::vector<AllowEntry>& allow,
                                               std::vector<AllowEntry>* unused) {
  std::vector<bool> used(allow.size(), false);
  std::vector<Diagnostic> kept;
  for (const Diagnostic& d : diags) {
    bool suppressed = false;
    for (std::size_t i = 0; i < allow.size(); ++i) {
      if (allow[i].file == d.file && allow[i].rule == d.rule) {
        used[i] = true;
        suppressed = true;
      }
    }
    if (!suppressed) kept.push_back(d);
  }
  if (unused != nullptr) {
    for (std::size_t i = 0; i < allow.size(); ++i) {
      if (!used[i]) unused->push_back(allow[i]);
    }
  }
  return kept;
}

/// `file:line: [rule] message` — the format compilers use, so editors and CI
/// annotations pick the locations up for free.
inline std::string format_diagnostic(const Diagnostic& d) {
  std::ostringstream out;
  out << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message;
  return out.str();
}

}  // namespace qdb::scan
